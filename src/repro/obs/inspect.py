"""Trace inspector: reconstruct what a run did from its JSONL trace.

Library API (:class:`TraceInspector`) and CLI (``python -m repro trace
run.jsonl``) over the event stream exported by
:meth:`repro.obs.trace.Tracer.export_jsonl`.  The inspector answers the
questions a misbehaving run raises:

- *what happened, overall?* — event counts by type, time span, node count
  (:meth:`TraceInspector.summary_text`);
- *what did node X see?* — a per-node timeline of every event the node is
  the subject of **or referenced by** (as ``src``/``dst``/``dead``/...),
  so a crash shows up in its neighbours' timelines too
  (:meth:`TraceInspector.node_timeline`);
- *why were messages dropped?* — drops grouped by structured reason
  (:meth:`TraceInspector.drop_summary`);
- *how fast did repair happen?* — per crashed node: crash time, first
  detection (orphan re-rooting / sentinel takeover), first repair notice,
  and the crash→repair latency (:meth:`TraceInspector.repair_report`).

CLI usage::

    python -m repro trace run.jsonl                  # summary
    python -m repro trace run.jsonl --node 57        # node 57's timeline
    python -m repro trace run.jsonl --type msg.drop  # filter by type
    python -m repro trace run.jsonl --since 10 --until 40 --prefix elink.
    python -m repro trace run.jsonl --drops --repairs
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import Any, Iterable, Sequence

from repro.obs.trace import TraceEvent, Tracer

#: Payload keys that reference other nodes; used to pull an event into the
#: timeline of every node it mentions, not just its subject.
_NODE_REF_KEYS = ("src", "dst", "via", "dead", "by", "root", "owner")

#: Event types marking the first protocol-level *detection* of a crash.
_DETECTION_TYPES = {"elink.orphan", "elink.takeover"}


class TraceInspector:
    """Query layer over a loaded trace (a list of :class:`TraceEvent`)."""

    def __init__(self, events: Sequence[TraceEvent]):
        self.events = sorted(events, key=lambda e: e.time)

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceInspector":
        """Load the JSONL trace at *path*."""
        return cls(Tracer.load_jsonl(path))

    # -- basic shape ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def span(self) -> tuple[float, float]:
        """(first, last) event timestamps; (0, 0) for an empty trace."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0].time, self.events[-1].time)

    def nodes(self) -> list[Any]:
        """Every distinct subject node, sorted by repr."""
        return sorted({e.node for e in self.events if e.node is not None}, key=repr)

    def type_counts(self) -> Counter:
        """Event counts by type."""
        return Counter(e.type for e in self.events)

    # -- filtering ------------------------------------------------------
    def filtered(
        self,
        *,
        types: Iterable[str] | None = None,
        prefix: str | None = None,
        node: Any = None,
        since: float | None = None,
        until: float | None = None,
    ) -> "TraceInspector":
        """A new inspector over the matching subset of events.

        ``node`` matches the subject *or* any node-reference payload key,
        so a node's view includes messages sent to it and repairs of it.
        """
        type_set = set(types) if types is not None else None
        out = []
        for event in self.events:
            if type_set is not None and event.type not in type_set:
                continue
            if prefix is not None and not event.type.startswith(prefix):
                continue
            if node is not None and not _involves(event, node):
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return TraceInspector(out)

    def node_timeline(self, node: Any) -> list[TraceEvent]:
        """Every event involving *node* (subject or referenced), in time order."""
        return self.filtered(node=node).events

    # -- diagnosis ------------------------------------------------------
    def drop_summary(self) -> Counter:
        """Structured-drop counts keyed by reason (``msg.drop`` events)."""
        return Counter(
            e.data.get("reason", "?") for e in self.events if e.type == "msg.drop"
        )

    def repair_report(self) -> list[dict[str, Any]]:
        """Per crashed node: crash / detection / repair times and latency.

        One dict per ``node.crash`` event (recoveries open a new entry if
        the node crashes again), with ``detect_time``/``repair_time`` of
        ``None`` when the trace holds no matching event — a stall worth
        investigating, which is the point of this report.
        """
        reports: list[dict[str, Any]] = []
        open_by_node: dict[Any, dict[str, Any]] = {}
        for event in self.events:
            if event.type == "node.crash":
                entry = {
                    "node": event.node,
                    "crash_time": event.time,
                    "detect_time": None,
                    "detect_kind": None,
                    "repair_time": None,
                    "repair_kind": None,
                    "repair_by": None,
                    "latency": None,
                }
                reports.append(entry)
                open_by_node[event.node] = entry
                continue
            if event.type in _DETECTION_TYPES:
                entry = open_by_node.get(event.data.get("dead"))
                if entry is not None and entry["detect_time"] is None:
                    entry["detect_time"] = event.time
                    entry["detect_kind"] = event.type
                continue
            if event.type == "repair.note":
                entry = open_by_node.get(event.data.get("dead"))
                if entry is not None and entry["repair_time"] is None:
                    entry["repair_time"] = event.time
                    entry["repair_kind"] = event.data.get("kind")
                    entry["repair_by"] = event.node
                    entry["latency"] = event.time - entry["crash_time"]
                    # A repair implies detection: the probe timeout that
                    # initiates a failover is itself the detection, and it
                    # can precede the elink.takeover event (which fires
                    # when the takeover *order arrives*).  Events are
                    # processed in time order, so first evidence wins.
                    if entry["detect_time"] is None:
                        entry["detect_time"] = event.time
                        entry["detect_kind"] = "repair.note"
        return reports

    def repair_latencies(self) -> list[float]:
        """Crash→first-repair latencies for every repaired crash."""
        return [
            r["latency"] for r in self.repair_report() if r["latency"] is not None
        ]

    # -- rendering ------------------------------------------------------
    def summary_text(self) -> str:
        """Human-readable run summary (the default CLI output)."""
        first, last = self.span
        lines = [
            f"trace: {len(self.events)} events, "
            f"t = [{first:.2f}, {last:.2f}], {len(self.nodes())} nodes",
            "",
            "events by type:",
        ]
        for type_name, count in sorted(
            self.type_counts().items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {type_name:<22} {count:>9}")
        drops = self.drop_summary()
        if drops:
            lines += ["", "drops by reason:"]
            for reason, count in drops.most_common():
                lines.append(f"  {reason:<22} {count:>9}")
        repairs = self.repair_report()
        if repairs:
            latencies = self.repair_latencies()
            repaired = len(latencies)
            lines += [
                "",
                f"crashes: {len(repairs)}, repaired: {repaired}"
                + (
                    f", mean repair latency {sum(latencies) / repaired:.1f}"
                    if repaired
                    else ""
                ),
            ]
        return "\n".join(lines)

    def timeline_text(self, node: Any, limit: int | None = None) -> str:
        """Render *node*'s timeline, one event per line."""
        events = self.node_timeline(node)
        shown = events if limit is None else events[:limit]
        lines = [f"timeline of node {node!r}: {len(events)} events"]
        for event in shown:
            detail = " ".join(f"{k}={_short(v)}" for k, v in event.data.items())
            subject = "" if event.node == node else f" @{event.node!r}"
            lines.append(f"  t={event.time:9.2f}  {event.type:<20}{subject}  {detail}")
        if limit is not None and len(events) > limit:
            lines.append(f"  ... {len(events) - limit} more (raise --limit)")
        return "\n".join(lines)

    def repair_text(self) -> str:
        """Render the crash→detection→repair table."""
        reports = self.repair_report()
        if not reports:
            return "no crashes in trace"
        lines = ["crash -> detection -> repair:"]
        for r in reports:
            detect = (
                f"detected t={r['detect_time']:.2f} ({r['detect_kind']})"
                if r["detect_time"] is not None
                else "never detected"
            )
            repair = (
                f"repaired t={r['repair_time']:.2f} ({r['repair_kind']} by "
                f"{r['repair_by']!r}, latency {r['latency']:.2f})"
                if r["repair_time"] is not None
                else "never repaired"
            )
            lines.append(
                f"  node {r['node']!r}: crash t={r['crash_time']:.2f} -> "
                f"{detect} -> {repair}"
            )
        return "\n".join(lines)


def _involves(event: TraceEvent, node: Any) -> bool:
    """Whether *event* concerns *node* as subject or payload reference."""
    if event.node == node:
        return True
    data = event.data
    for key in _NODE_REF_KEYS:
        if key in data and data[key] == node:
            return True
    return False


def _short(value: Any, limit: int = 40) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _parse_node(raw: str) -> Any:
    """CLI node ids: prefer int (the common case), fall back to string."""
    try:
        return int(raw)
    except ValueError:
        return raw


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect a JSONL protocol trace (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument("path", help="JSONL trace written by Tracer.export_jsonl")
    parser.add_argument("--node", help="show this node's timeline")
    parser.add_argument(
        "--type", action="append", default=None, help="keep only this event type (repeatable)"
    )
    parser.add_argument("--prefix", help="keep only event types with this prefix (e.g. msg.)")
    parser.add_argument("--since", type=float, default=None, help="keep events at/after this time")
    parser.add_argument("--until", type=float, default=None, help="keep events at/before this time")
    parser.add_argument("--limit", type=int, default=100, help="max timeline lines (default 100)")
    parser.add_argument("--drops", action="store_true", help="print only the drop summary")
    parser.add_argument("--repairs", action="store_true", help="print the crash/repair table")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro trace``."""
    args = build_parser().parse_args(argv)
    try:
        inspector = TraceInspector.from_jsonl(args.path)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    inspector = inspector.filtered(
        types=args.type, prefix=args.prefix, since=args.since, until=args.until
    )
    try:
        printed = False
        if args.drops:
            drops = inspector.drop_summary()
            if drops:
                for reason, count in drops.most_common():
                    print(f"{reason:<22} {count:>9}")
            else:
                print("no drops in trace")
            printed = True
        if args.repairs:
            print(inspector.repair_text())
            printed = True
        if args.node is not None:
            print(inspector.timeline_text(_parse_node(args.node), limit=args.limit))
            printed = True
        if not printed:
            print(inspector.summary_text())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly like
        # other line-oriented tools instead of dumping a traceback.
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())

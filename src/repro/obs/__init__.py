"""repro.obs — observability: tracing, metrics, profiling, inspection.

A zero-cost-when-disabled observability layer over the simulator and
protocol stacks (DESIGN.md §10, docs/OBSERVABILITY.md):

- :mod:`repro.obs.trace` — :class:`Tracer`, a bounded ring of typed,
  timestamped :class:`TraceEvent` records emitted by hooks in the kernel,
  network, node runtime, fault injector and ELink; exports JSONL.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, explicit-bucket histograms and per-round time series.
- :mod:`repro.obs.profiler` — :class:`KernelProfiler`, per-event-type
  wall-time accounting inside the event kernel, activated ambiently with
  :func:`profiled` (also behind the experiment runner's ``--profile``).
- :mod:`repro.obs.inspect` — :class:`TraceInspector` and the
  ``python -m repro trace`` CLI: per-node timelines, drop summaries,
  crash→detection→repair reports.

Every hook site in the instrumented layers guards on ``tracer is not
None`` (one predicate), so runs without a tracer attached are
byte-identical to pre-observability builds — enforced by
``tests/test_obs.py`` and the fast-path micro-benchmarks.
"""

from repro.obs.inspect import TraceInspector
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.profiler import KernelProfiler, current_profiler, profiled, set_profiler
from repro.obs.trace import TraceEvent, Tracer, iter_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "TimeSeries",
    "TraceEvent",
    "TraceInspector",
    "Tracer",
    "current_profiler",
    "iter_jsonl",
    "profiled",
    "set_profiler",
]

"""Metrics registry: counters, gauges, histograms, and time series.

:class:`MetricsRegistry` is the quantitative half of the observability
layer (the :mod:`~repro.obs.trace` ring buffer is the qualitative half).
It subsumes the ad-hoc counting experiments used to do by hand — "messages
this round", "live-node fraction", "clusters after repair" — behind four
small instrument types:

- :class:`Counter` — a monotonically increasing total (messages sent,
  drops, repairs performed);
- :class:`Gauge` — a last-value-wins level (live nodes, cluster count);
- :class:`Histogram` — a distribution over **explicit** bucket edges
  (repair latency, episode depth, route hop counts).  A value lands in
  the first bucket whose upper edge is ``>= value`` (edges are
  inclusive), or in the overflow bucket past the last edge;
- :class:`TimeSeries` — ``(t, value)`` samples for per-round trajectories
  (messages/round, live-node fraction, energy spent), the
  representation every experiment table ultimately wants.

Instruments are created on first use and type-checked on reuse, so two
call sites asking for ``counter("msg.total")`` share one instrument and
asking for the same name as a different type is an error, not silent
aliasing.  :meth:`MetricsRegistry.snapshot` renders everything to plain
JSON-ready dicts for artifacts and assertions.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Sequence

#: Default histogram edges, in hop-delay units — sized for repair
#: latencies and protocol phase durations on the paper-scale networks.
DEFAULT_LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by *amount* (may be negative)."""
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution over explicit, inclusive upper bucket edges.

    ``Histogram((1, 5, 10))`` has four buckets: ``<= 1``, ``(1, 5]``,
    ``(5, 10]`` and ``> 10`` (overflow).  Exact-edge observations land in
    the bucket they bound: ``observe(5.0)`` increments ``(1, 5]``.
    """

    __slots__ = ("edges", "counts", "count", "total")

    def __init__(self, edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"bucket edges must be strictly increasing, got {edges}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)  # last slot = overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket (last entry equals :attr:`count`)."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class TimeSeries:
    """Ordered ``(t, value)`` samples, e.g. one per protocol round."""

    __slots__ = ("points",)

    def __init__(self) -> None:
        self.points: list[tuple[float, float]] = []

    def observe(self, t: float, value: float) -> None:
        """Append a sample at time *t*."""
        self.points.append((float(t), float(value)))

    def values(self) -> list[float]:
        """The sampled values, in observation order."""
        return [v for _, v in self.points]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"type": "series", "points": [list(p) for p in self.points]}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram, "series": TimeSeries}


class MetricsRegistry:
    """Named instruments, created on first use and type-checked on reuse."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | TimeSeries] = {}

    def _get(self, name: str, cls, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {cls.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get(name, Gauge, Gauge)

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """Get or create the histogram *name*.

        *edges* applies on creation only; asking again with different
        edges raises, because silently merging distributions recorded
        against different buckets would corrupt both.
        """
        metric = self._get(name, Histogram, lambda: Histogram(edges))
        if tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(
                f"histogram {name!r} exists with edges {metric.edges}, "
                f"requested {tuple(edges)}"
            )
        return metric

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series *name*."""
        return self._get(name, TimeSeries, TimeSeries)

    # -- output ---------------------------------------------------------
    def names(self) -> list[str]:
        """Sorted names of all registered instruments."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instruments rendered to JSON-ready dicts, keyed by name."""
        return {name: metric.to_dict() for name, metric in sorted(self._metrics.items())}

    def export_json(self, path: str) -> None:
        """Write :meth:`snapshot` to *path* as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} instruments)"

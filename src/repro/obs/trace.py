"""Structured tracing: typed, timestamped protocol events in a ring buffer.

A :class:`Tracer` collects :class:`TraceEvent` records emitted by hooks in
the simulation and protocol layers (`sim/kernel.py`, `sim/network.py`,
`sim/node.py`, `sim/faults.py`, `core/elink.py`).  Tracing is **opt-in and
zero-cost when disabled**: every hook site guards on ``tracer is not
None``, so a run without a tracer attached executes exactly the same
instruction stream as before this module existed (verified by the
byte-identical BENCH tables and the fast-path micro-benchmarks).

Event taxonomy (the complete catalog lives in ``docs/OBSERVABILITY.md``):

========================  ====================================================
prefix                    emitted by
========================  ====================================================
``msg.*``                 the network delivery layer (send/route/deliver/drop)
``timer.*``               timer lifecycle (set at the node, fire/skip at the
                          kernel, blanket-cancel at crash cleanup)
``node.* / link.*``       topology mutators (crash, recover, link up/down)
``fault.*``               the fault injector applying a :class:`FaultPlan`
``repair.*``              protocol-level repair notices (orphan re-rooting,
                          sentinel failover, child pruning)
``elink.*``               ELink phase transitions (elect, join, switch,
                          episode completion, phase1/phase2 waves, takeover,
                          final assembly)
========================  ====================================================

The buffer is a bounded ring (oldest events evicted first);
:attr:`Tracer.evicted` reports how many were lost so analyses know when a
trace is a suffix rather than the whole run.  Export is line-delimited
JSON (one event per line) via :meth:`Tracer.export_jsonl`, the format the
``python -m repro trace`` inspector consumes.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator

#: Default ring-buffer capacity (events).  At ~120 bytes/event this bounds
#: a runaway trace to ~30 MB of memory.
DEFAULT_CAPACITY = 262_144


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence: a timestamp, a type tag, a subject node, and
    free-form payload details.

    ``node`` is the event's subject (the crashing node, the timer owner,
    the message destination for deliveries, the sender for sends); events
    without a natural subject (e.g. ``elink.assembled``) use ``None``.
    """

    time: float
    type: str
    node: Hashable | None
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to one JSONL line (numpy scalars/arrays coerced)."""
        payload = {"t": self.time, "type": self.type, "node": self.node}
        if self.data:
            payload["data"] = self.data
        return json.dumps(payload, default=_json_default)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Parse one JSONL line back into an event.

        JSON has no tuples, so tuple node ids round-trip as lists; the
        inspector treats ids opaquely, which makes this loss harmless.
        """
        payload = json.loads(line)
        return cls(
            time=float(payload["t"]),
            type=payload["type"],
            node=payload.get("node"),
            data=payload.get("data", {}),
        )


def _json_default(value: Any) -> Any:
    """JSON fallback for payload values: numpy first, then ``repr``."""
    tolist = getattr(value, "tolist", None)
    if tolist is not None:  # numpy scalars and arrays
        return tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    return repr(value)


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent` records.

    Attach one to a :class:`~repro.sim.network.Network` at construction
    (``Network(graph, tracer=tracer)``) and every instrumented layer that
    touches the network — kernel, nodes, fault injector, ELink runtime —
    emits through it.  A network without a tracer pays one ``is not None``
    predicate per hook site and nothing else.

    Parameters
    ----------
    capacity:
        Ring size in events; the oldest events are evicted beyond it.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._emitted = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    # -- emission -------------------------------------------------------
    def emit(
        self, time: float, type: str, node: Hashable | None = None, **data: Any
    ) -> None:
        """Record one event.  Keyword arguments become the event payload."""
        self._emitted += 1
        event = TraceEvent(time, type, node, data)
        self._buffer.append(event)
        if self._subscribers:
            for callback in self._subscribers:
                callback(event)

    # -- subscription ---------------------------------------------------
    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke *callback* synchronously on every future :meth:`emit`.

        This is how online checkers (the ``repro.verify`` invariant
        monitors) see events as they happen instead of post-hoc from the
        ring, whose oldest events may have been evicted.  Subscribers must
        not mutate simulation state.  With no subscribers the emit path
        pays one truthiness check.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Remove a subscriber added by :meth:`subscribe` (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def emitted(self) -> int:
        """Total events emitted over the tracer's lifetime."""
        return self._emitted

    @property
    def evicted(self) -> int:
        """Events lost to the ring bound (0 means the trace is complete)."""
        return self._emitted - len(self._buffer)

    @property
    def capacity(self) -> int:
        """Ring-buffer bound, in events."""
        buffer_maxlen = self._buffer.maxlen
        assert buffer_maxlen is not None
        return buffer_maxlen

    def events(
        self,
        *,
        type: str | None = None,
        prefix: str | None = None,
        node: Hashable | None = None,
        since: float | None = None,
        until: float | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> Iterator[TraceEvent]:
        """Iterate buffered events, oldest first, with optional filters.

        ``type`` matches exactly, ``prefix`` matches ``event.type``
        prefixes (e.g. ``"msg."``), ``node`` matches the subject node, and
        ``since``/``until`` bound the timestamp (inclusive).
        """
        for event in self._buffer:
            if type is not None and event.type != type:
                continue
            if prefix is not None and not event.type.startswith(prefix):
                continue
            if node is not None and event.node != node:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            if predicate is not None and not predicate(event):
                continue
            yield event

    def type_counts(self) -> Counter:
        """Event counts by type, over the buffered window."""
        return Counter(event.type for event in self._buffer)

    def clear(self) -> None:
        """Drop all buffered events (lifetime counters keep running)."""
        self._buffer.clear()

    # -- export ---------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write the buffered events to *path*, one JSON object per line.

        Returns the number of events written.  The format is documented in
        ``docs/OBSERVABILITY.md`` and consumed by ``python -m repro trace``.
        """
        with open(path, "w", encoding="utf-8") as handle:
            count = 0
            for event in self._buffer:
                handle.write(event.to_json())
                handle.write("\n")
                count += 1
        return count

    @staticmethod
    def load_jsonl(path: str) -> list[TraceEvent]:
        """Read a JSONL trace back into a list of :class:`TraceEvent`."""
        events = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(TraceEvent.from_json(line))
        return events

    def __repr__(self) -> str:
        return (
            f"Tracer(buffered={len(self._buffer)}, emitted={self._emitted}, "
            f"capacity={self.capacity})"
        )


def iter_jsonl(path: str) -> Iterable[TraceEvent]:
    """Stream a JSONL trace file without materializing the whole list."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield TraceEvent.from_json(line)

"""Kernel profiling: per-event-type wall-time accounting.

The event kernel is the chokepoint every simulated action flows through —
message deliveries, protocol timers, fault injections — which makes it the
one place a profiler can attribute wall time to *protocol behaviour*
rather than Python call stacks.  :class:`KernelProfiler` accumulates
``(count, seconds)`` per callback qualname (``Network._deliver``,
``ELinkNode._episode_timeout``, ``FaultInjector._apply``, ...), and
:meth:`KernelProfiler.report` renders a flame-style summary: one bar per
event type, widest first.

Activation is ambient: :class:`~repro.sim.kernel.EventKernel` asks
:func:`current_profiler` at construction, so ``with profiled() as prof:``
captures every kernel created inside the block — including the ones
experiments build internally — without threading a parameter through
every layer.  With no profiler active (the default) the kernel's run loop
pays a single ``is None`` predicate per event and takes no timestamps.

This module must stay import-light (no numpy, no repro.sim) because the
kernel imports it.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator

_active: "KernelProfiler | None" = None


def current_profiler() -> "KernelProfiler | None":
    """The ambient profiler new kernels should attach, or None."""
    return _active


def set_profiler(profiler: "KernelProfiler | None") -> None:
    """Install *profiler* as the ambient profiler (None deactivates)."""
    global _active
    _active = profiler


@contextmanager
def profiled(profiler: "KernelProfiler | None" = None) -> Iterator["KernelProfiler"]:
    """Context manager: activate a profiler for every kernel built inside.

    ::

        with profiled() as prof:
            run_elink(...)
        print(prof.report())
    """
    prof = profiler if profiler is not None else KernelProfiler()
    previous = _active
    set_profiler(prof)
    try:
        yield prof
    finally:
        set_profiler(previous)


class KernelProfiler:
    """Accumulates wall time and event counts per callback qualname."""

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def record(self, callback: Callable, elapsed: float) -> None:
        """Charge *elapsed* wall seconds to *callback*'s event type."""
        name = getattr(callback, "__qualname__", None) or repr(callback)
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        """Wall time attributed across all event types."""
        return sum(self.seconds.values())

    @property
    def total_events(self) -> int:
        """Events executed under profiling."""
        return sum(self.counts.values())

    def merge(self, other: "KernelProfiler") -> None:
        """Fold *other*'s accumulators into this profiler."""
        for name, secs in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + secs
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count

    def rows(self) -> list[tuple[str, int, float]]:
        """``(qualname, count, seconds)`` rows, most expensive first."""
        return sorted(
            ((name, self.counts[name], secs) for name, secs in self.seconds.items()),
            key=lambda row: -row[2],
        )

    def report(self, width: int = 40) -> str:
        """Flame-style text summary: one bar per event type, widest first."""
        rows = self.rows()
        if not rows:
            return "(no events profiled)"
        total = self.total_seconds or 1e-12
        name_width = max(len(name) for name, _, _ in rows)
        lines = [
            f"kernel profile: {self.total_events} events, "
            f"{self.total_seconds * 1e3:.1f} ms attributed"
        ]
        for name, count, secs in rows:
            share = secs / total
            bar = "#" * max(1, round(share * width))
            lines.append(
                f"  {name:<{name_width}}  {secs * 1e3:9.2f} ms  {count:>9}x  "
                f"{share:6.1%}  {bar}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"KernelProfiler(types={len(self.seconds)}, events={self.total_events}, "
            f"wall={self.total_seconds * 1e3:.1f}ms)"
        )

"""Quadtree decomposition and sentinel sets (paper §3.2).

The network's square bounding box is recursively split into 4 subcells.
Every cell elects a **leader** — the node closest to the cell centroid that
has not already been elected at a shallower level (footnote 1).  The leaders
of all level-*l* cells form the **sentinel set** ``S_l``; every node ends up
in exactly one sentinel set, so ``Σ_l |S_l| = N``.

The quadtree parent of a sentinel ``s ∈ S_l`` is the leader of the enclosing
level-(l-1) cell; that leader always exists because *s* itself was still
unelected when that cell voted.  ELink's implicit signalling schedules
``S_l`` by timers derived from the level; the explicit signalling walks
phase1/phase2/start messages up and down this parent relation.

For irregular placements the depth can exceed the grid-case
``log4(3N+1) - 1`` by a small constant (footnote 2); a depth cap guards
against pathological co-located points, flushing any remaining unelected
nodes into the deepest level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.geometry.topology import BoundingBox, Topology


@dataclass
class QuadCell:
    """One cell of the quadtree."""

    level: int
    bounds: BoundingBox
    members: list[Hashable]
    leader: Hashable | None = None
    parent: "QuadCell | None" = field(default=None, repr=False)
    children: list["QuadCell"] = field(default_factory=list, repr=False)

    @property
    def centroid(self) -> tuple[float, float]:
        """Geometric centre of the cell."""
        return self.bounds.center


class QuadTreeDecomposition:
    """Sentinel hierarchy over a :class:`~repro.geometry.topology.Topology`.

    Attributes
    ----------
    sentinel_sets:
        ``sentinel_sets[l]`` is the list of sentinels (cell leaders) at
        level *l*; every network node appears in exactly one set.
    level_of:
        Mapping node -> its sentinel level.
    quad_parent:
        Mapping sentinel -> its quadtree parent sentinel (the root maps to
        itself).
    quad_children:
        Mapping sentinel -> list of its quadtree child sentinels.
    """

    #: Hard depth cap; co-located nodes would otherwise split forever.
    MAX_DEPTH = 32

    def __init__(self, topology: Topology):
        self.topology = topology
        self.root_cell = QuadCell(0, topology.bounds, list(topology.graph.nodes))
        self.sentinel_sets: list[list[Hashable]] = []
        self.level_of: dict[Hashable, int] = {}
        self.quad_parent: dict[Hashable, Hashable] = {}
        self.quad_children: dict[Hashable, list[Hashable]] = {}
        self._cells_by_level: list[list[QuadCell]] = [[self.root_cell]]
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        positions = self.topology.positions
        assigned: set[Hashable] = set()
        level = 0
        current = [self.root_cell]
        while current:
            leaders: list[Hashable] = []
            for cell in current:
                unelected = [v for v in cell.members if v not in assigned]
                if not unelected:
                    continue
                if level >= self.MAX_DEPTH:
                    # Depth cap: flush every remaining node as a sentinel of
                    # this final level (footnote 2's "+k" tolerance).
                    for node in sorted(unelected, key=repr):
                        leaders.append(node)
                        assigned.add(node)
                        self.level_of[node] = level
                        self._attach_parent(node, cell)
                    continue
                leader = self._closest_to(cell.centroid, unelected, positions)
                cell.leader = leader
                leaders.append(leader)
                assigned.add(leader)
                self.level_of[leader] = level
                self._attach_parent(leader, cell)
            if leaders:
                self.sentinel_sets.append(leaders)
            if len(assigned) == len(positions) or level >= self.MAX_DEPTH:
                break
            current = self._subdivide(current)
            if current:
                self._cells_by_level.append(current)
            level += 1
        # Sanity: every node must have been elected at some level.
        if len(assigned) != len(positions):
            missing = set(positions) - assigned
            raise RuntimeError(f"quadtree failed to assign nodes: {sorted(missing, key=repr)[:5]}")

    def _attach_parent(self, leader: Hashable, cell: QuadCell) -> None:
        parent_cell = cell.parent
        while parent_cell is not None and parent_cell.leader is None:
            parent_cell = parent_cell.parent
        parent = parent_cell.leader if parent_cell is not None else leader
        self.quad_parent[leader] = parent
        if parent != leader:
            self.quad_children.setdefault(parent, []).append(leader)
        self.quad_children.setdefault(leader, [])

    @staticmethod
    def _closest_to(centroid, candidates, positions) -> Hashable:
        cx, cy = centroid
        return min(
            candidates,
            key=lambda v: ((positions[v][0] - cx) ** 2 + (positions[v][1] - cy) ** 2, repr(v)),
        )

    def _subdivide(self, cells: list[QuadCell]) -> list[QuadCell]:
        positions = self.topology.positions
        out: list[QuadCell] = []
        for cell in cells:
            if not cell.members:
                continue
            b = cell.bounds
            mx, my = b.center
            quads = [
                BoundingBox(b.xmin, b.ymin, mx, my),
                BoundingBox(mx, b.ymin, b.xmax, my),
                BoundingBox(b.xmin, my, mx, b.ymax),
                BoundingBox(mx, my, b.xmax, b.ymax),
            ]
            buckets: list[list[Hashable]] = [[] for _ in quads]
            # Each member goes to exactly one quadrant: points on the
            # splitting lines go to the left/bottom quadrant.
            for v in cell.members:
                x, y = positions[v]
                if x <= mx:
                    k = 0 if y <= my else 2
                else:
                    k = 1 if y <= my else 3
                buckets[k].append(v)
            for k, q in enumerate(quads):
                if buckets[k]:
                    child = QuadCell(cell.level + 1, q, buckets[k], parent=cell)
                    cell.children.append(child)
                    out.append(child)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """α — the index of the deepest non-empty sentinel set."""
        return len(self.sentinel_sets) - 1

    def sentinels_at(self, level: int) -> list[Hashable]:
        """Copy of the sentinel list at *level*."""
        return list(self.sentinel_sets[level])

    def iter_sentinels(self) -> Iterator[tuple[int, Hashable]]:
        """Yield (level, sentinel) over the whole hierarchy."""
        for level, sentinels in enumerate(self.sentinel_sets):
            for s in sentinels:
                yield level, s

    @property
    def root(self) -> Hashable:
        """The level-0 sentinel (quadtree root)."""
        return self.sentinel_sets[0][0]

    def expected_depth_bound(self) -> float:
        """The grid-case depth ``log4(3N+1) - 1`` from §3.2."""
        n = self.topology.num_nodes
        return math.log(3 * n + 1, 4) - 1

    def __repr__(self) -> str:
        sizes = [len(s) for s in self.sentinel_sets]
        return f"QuadTreeDecomposition(depth={self.depth}, level_sizes={sizes})"

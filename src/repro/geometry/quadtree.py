"""Quadtree decomposition and sentinel sets (paper §3.2).

The network's square bounding box is recursively split into 4 subcells.
Every cell elects a **leader** — the node closest to the cell centroid that
has not already been elected at a shallower level (footnote 1).  The leaders
of all level-*l* cells form the **sentinel set** ``S_l``; every node ends up
in exactly one sentinel set, so ``Σ_l |S_l| = N``.

The quadtree parent of a sentinel ``s ∈ S_l`` is the leader of the enclosing
level-(l-1) cell; that leader always exists because *s* itself was still
unelected when that cell voted.  ELink's implicit signalling schedules
``S_l`` by timers derived from the level; the explicit signalling walks
phase1/phase2/start messages up and down this parent relation.

For irregular placements the depth can exceed the grid-case
``log4(3N+1) - 1`` by a small constant (footnote 2); a depth cap guards
against pathological co-located points, flushing any remaining unelected
nodes into the deepest level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterator

import numpy as np

from repro.geometry.topology import BoundingBox, Topology

#: Below this size the reference per-cell build runs (same outputs; the
#: columnar build's setup costs only pay off at scale).
FAST_MIN_N = 4096


@dataclass
class _LevelCols:
    """Columnar snapshot of one quadtree level (fast build).

    Holds everything needed to lazily materialize the level's
    :class:`QuadCell` objects: member order grouped by cell, group
    offsets, per-cell bounds, each cell's parent index in the previous
    level, and the elected leader (−1 where the cell elected none).
    """

    order: np.ndarray
    starts: np.ndarray
    xmin: np.ndarray
    ymin: np.ndarray
    xmax: np.ndarray
    ymax: np.ndarray
    parent_idx: np.ndarray
    leaders: np.ndarray


@dataclass
class QuadCell:
    """One cell of the quadtree."""

    level: int
    bounds: BoundingBox
    members: list[Hashable]
    leader: Hashable | None = None
    parent: "QuadCell | None" = field(default=None, repr=False)
    children: list["QuadCell"] = field(default_factory=list, repr=False)

    @property
    def centroid(self) -> tuple[float, float]:
        """Geometric centre of the cell."""
        return self.bounds.center


class QuadTreeDecomposition:
    """Sentinel hierarchy over a :class:`~repro.geometry.topology.Topology`.

    Attributes
    ----------
    sentinel_sets:
        ``sentinel_sets[l]`` is the list of sentinels (cell leaders) at
        level *l*; every network node appears in exactly one set.
    level_of:
        Mapping node -> its sentinel level.
    quad_parent:
        Mapping sentinel -> its quadtree parent sentinel (the root maps to
        itself).
    quad_children:
        Mapping sentinel -> list of its quadtree child sentinels.
    """

    #: Hard depth cap; co-located nodes would otherwise split forever.
    MAX_DEPTH = 32

    def __init__(self, topology: Topology, *, fast: bool | None = None):
        self.topology = topology
        self.root_cell = QuadCell(0, topology.bounds, list(topology.graph.nodes))
        self.sentinel_sets: list[list[Hashable]] = []
        self.level_of: dict[Hashable, int] = {}
        self.quad_parent: dict[Hashable, Hashable] = {}
        self.quad_children: dict[Hashable, list[Hashable]] = {}
        #: Eager cell storage (filled by the reference build, or lazily by
        #: :meth:`_materialize_cells` after a fast build).
        self._cells_eager: list[list[QuadCell]] | None = None
        #: Columnar level snapshots from the fast build (levels >= 1).
        self._fast_levels: list[_LevelCols] = []
        if fast is None:
            fast = topology.num_nodes >= FAST_MIN_N
        if fast and self._fast_eligible():
            self._build_fast()
        else:
            self._cells_eager = [[self.root_cell]]
            self._build()

    @property
    def _cells_by_level(self) -> list[list[QuadCell]]:
        """Per-level :class:`QuadCell` lists (lazy after a fast build)."""
        if self._cells_eager is None:
            self._materialize_cells()
        return self._cells_eager

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        positions = self.topology.positions
        assigned: set[Hashable] = set()
        level = 0
        current = [self.root_cell]
        while current:
            leaders: list[Hashable] = []
            for cell in current:
                unelected = [v for v in cell.members if v not in assigned]
                if not unelected:
                    continue
                if level >= self.MAX_DEPTH:
                    # Depth cap: flush every remaining node as a sentinel of
                    # this final level (footnote 2's "+k" tolerance).
                    for node in sorted(unelected, key=repr):
                        leaders.append(node)
                        assigned.add(node)
                        self.level_of[node] = level
                        self._attach_parent(node, cell)
                    continue
                leader = self._closest_to(cell.centroid, unelected, positions)
                cell.leader = leader
                leaders.append(leader)
                assigned.add(leader)
                self.level_of[leader] = level
                self._attach_parent(leader, cell)
            if leaders:
                self.sentinel_sets.append(leaders)
            if len(assigned) == len(positions) or level >= self.MAX_DEPTH:
                break
            current = self._subdivide(current)
            if current:
                self._cells_by_level.append(current)
            level += 1
        # Sanity: every node must have been elected at some level.
        if len(assigned) != len(positions):
            missing = set(positions) - assigned
            raise RuntimeError(f"quadtree failed to assign nodes: {sorted(missing, key=repr)[:5]}")

    # ------------------------------------------------------------------
    # columnar construction (identical outputs, no per-message Python)
    # ------------------------------------------------------------------
    def _fast_eligible(self) -> bool:
        """The columnar build requires node ids that are exactly the ints
        ``0..n-1`` in ascending graph order (true for the generated grid and
        geometric topologies); anything else runs the reference build."""
        nodes = self.root_cell.members
        n = len(nodes)
        if n == 0:
            return False
        if nodes[0] != 0 or nodes[-1] != n - 1:
            return False
        return all(type(v) is int for v in nodes) and all(
            v == i for i, v in enumerate(nodes)
        )

    def _build_fast(self) -> None:
        """Vectorised replica of :meth:`_build`.

        Per level, members live in one int array grouped by cell (groups in
        the reference build's cell order, ascending ids within — the
        order bucketed subdivision preserves).  Election, subdivision and
        bounds all become array expressions over the same float recurrences
        as the scalar code, so every output — sentinel sets, levels,
        parent/child maps, cell geometry, and all dict insertion orders —
        is identical.  Exact centroid-distance ties (real on grids) are
        resolved scalar with the reference ``repr`` key.  Cell *objects*
        are not built here; :meth:`_materialize_cells` reconstructs them on
        first ``_cells_by_level`` access from the level snapshots.
        """
        n = len(self.root_cell.members)
        positions = self.topology.positions
        pos = np.array([positions[v] for v in range(n)], dtype=np.float64)
        xs = np.ascontiguousarray(pos[:, 0])
        ys = np.ascontiguousarray(pos[:, 1])

        order = np.arange(n, dtype=np.int64)
        starts = np.zeros(1, dtype=np.int64)
        b = self.root_cell.bounds
        xmin = np.array([b.xmin])
        ymin = np.array([b.ymin])
        xmax = np.array([b.xmax])
        ymax = np.array([b.ymax])
        anc = np.full(1, -1, dtype=np.int64)  # nearest elected ancestor leader
        level_leaders: np.ndarray | None = None  # this level's snapshot target

        assigned = np.zeros(n, dtype=bool)
        assigned_count = 0
        level = 0
        level_of = self.level_of
        quad_parent = self.quad_parent
        quad_children = self.quad_children

        while True:
            num_cells = starts.size
            ends = np.append(starts[1:], order.size)
            cell_of = np.repeat(np.arange(num_cells, dtype=np.int64), ends - starts)
            unelected = ~assigned[order]
            leaders_level: list[Hashable] = []

            if level >= self.MAX_DEPTH:
                # Depth-cap flush (reference semantics: every remaining node
                # becomes a sentinel of this level, cell leaders stay None).
                starts_l = starts.tolist()
                ends_l = ends.tolist()
                anc_l = anc.tolist()
                for c in range(num_cells):
                    seg = order[starts_l[c] : ends_l[c]]
                    rem = seg[unelected[starts_l[c] : ends_l[c]]]
                    if not rem.size:
                        continue
                    ancestor = anc_l[c]
                    for node in sorted(rem.tolist(), key=repr):
                        leaders_level.append(node)
                        level_of[node] = level
                        parent = ancestor if ancestor >= 0 else node
                        quad_parent[node] = parent
                        if parent != node:
                            quad_children.setdefault(parent, []).append(node)
                        quad_children.setdefault(node, [])
                assigned_count = n
                if leaders_level:
                    self.sentinel_sets.append(leaders_level)
                break

            # Election: per-cell argmin of squared centroid distance over
            # the still-unelected members (same float expression as
            # _closest_to; ``inf`` masks elected members and empty votes).
            cx = (xmin + xmax) / 2.0
            cy = (ymin + ymax) / 2.0
            d2 = (xs[order] - cx[cell_of]) ** 2 + (ys[order] - cy[cell_of]) ** 2
            d2[~unelected] = np.inf
            best = np.minimum.reduceat(d2, starts)
            is_best = (d2 == best[cell_of]) & unelected
            cand_idx = np.flatnonzero(is_best)
            cand_cell = cell_of[cand_idx]
            cand_counts = np.bincount(cand_cell, minlength=num_cells)
            leader_per_cell = np.full(num_cells, -1, dtype=np.int64)
            single = cand_counts[cand_cell] == 1
            leader_per_cell[cand_cell[single]] = order[cand_idx[single]]
            if (cand_counts > 1).any():
                # Exact-distance ties: reference tie-break is min repr.
                tied: dict[int, list[int]] = {}
                for i, c in zip(cand_idx.tolist(), cand_cell.tolist()):
                    if cand_counts[c] > 1:
                        tied.setdefault(c, []).append(int(order[i]))
                for c, members in tied.items():
                    leader_per_cell[c] = min(members, key=repr)
            if level_leaders is not None:
                level_leaders[:] = leader_per_cell
            else:
                self._root_leader = int(leader_per_cell[0])

            elected_cells = np.flatnonzero(leader_per_cell >= 0)
            leaders_arr = leader_per_cell[elected_cells]
            assigned[leaders_arr] = True
            assigned_count += leaders_arr.size
            for leader, ancestor in zip(
                leaders_arr.tolist(), anc[elected_cells].tolist()
            ):
                leaders_level.append(leader)
                level_of[leader] = level
                parent = ancestor if ancestor >= 0 else leader
                quad_parent[leader] = parent
                if parent != leader:
                    quad_children.setdefault(parent, []).append(leader)
                quad_children.setdefault(leader, [])
            if leaders_level:
                self.sentinel_sets.append(leaders_level)
            if assigned_count == n:
                break

            # Subdivision: stable sort by (cell, quadrant) keeps members
            # ascending within each child and children in the reference
            # k = 0..3 append order; boundary points go left/bottom.
            kq = np.where(
                xs[order] <= cx[cell_of],
                np.where(ys[order] <= cy[cell_of], 0, 2),
                np.where(ys[order] <= cy[cell_of], 1, 3),
            )
            key = cell_of * 4 + kq
            perm = np.argsort(key, kind="stable")
            order = order[perm]
            skey = key[perm]
            starts = np.flatnonzero(np.r_[True, skey[1:] != skey[:-1]])
            group_key = skey[starts]
            parent_cell = group_key >> 2
            child_k = group_key & 3
            left = (child_k & 1) == 0
            bottom = (child_k & 2) == 0
            pmx = cx[parent_cell]
            pmy = cy[parent_cell]
            xmin, xmax = (
                np.where(left, xmin[parent_cell], pmx),
                np.where(left, pmx, xmax[parent_cell]),
            )
            ymin, ymax = (
                np.where(bottom, ymin[parent_cell], pmy),
                np.where(bottom, pmy, ymax[parent_cell]),
            )
            anc = np.where(leader_per_cell >= 0, leader_per_cell, anc)[parent_cell]
            level_leaders = np.full(starts.size, -1, dtype=np.int64)
            self._fast_levels.append(
                _LevelCols(order, starts, xmin, ymin, xmax, ymax, parent_cell, level_leaders)
            )
            level += 1

        if assigned_count != n:
            missing = np.flatnonzero(~assigned).tolist()
            raise RuntimeError(
                f"quadtree failed to assign nodes: {sorted(missing, key=repr)[:5]}"
            )

    def _materialize_cells(self) -> None:
        """Rebuild the :class:`QuadCell` tree from the fast build's level
        snapshots (first ``_cells_by_level`` access only; the scale path
        never needs the objects)."""
        self.root_cell.leader = getattr(self, "_root_leader", None)
        cells_by_level = [[self.root_cell]]
        previous = [self.root_cell]
        for depth_index, snap in enumerate(self._fast_levels, start=1):
            members = snap.order.tolist()
            starts = snap.starts.tolist()
            ends = starts[1:] + [len(members)]
            xmin = snap.xmin.tolist()
            ymin = snap.ymin.tolist()
            xmax = snap.xmax.tolist()
            ymax = snap.ymax.tolist()
            parent_idx = snap.parent_idx.tolist()
            leaders = snap.leaders.tolist()
            cells = []
            for g in range(len(starts)):
                parent = previous[parent_idx[g]]
                cell = QuadCell(
                    depth_index,
                    BoundingBox(xmin[g], ymin[g], xmax[g], ymax[g]),
                    members[starts[g] : ends[g]],
                    parent=parent,
                )
                if leaders[g] >= 0:
                    cell.leader = leaders[g]
                parent.children.append(cell)
                cells.append(cell)
            cells_by_level.append(cells)
            previous = cells
        self._cells_eager = cells_by_level

    def _attach_parent(self, leader: Hashable, cell: QuadCell) -> None:
        parent_cell = cell.parent
        while parent_cell is not None and parent_cell.leader is None:
            parent_cell = parent_cell.parent
        parent = parent_cell.leader if parent_cell is not None else leader
        self.quad_parent[leader] = parent
        if parent != leader:
            self.quad_children.setdefault(parent, []).append(leader)
        self.quad_children.setdefault(leader, [])

    @staticmethod
    def _closest_to(centroid, candidates, positions) -> Hashable:
        cx, cy = centroid
        return min(
            candidates,
            key=lambda v: ((positions[v][0] - cx) ** 2 + (positions[v][1] - cy) ** 2, repr(v)),
        )

    def _subdivide(self, cells: list[QuadCell]) -> list[QuadCell]:
        positions = self.topology.positions
        out: list[QuadCell] = []
        for cell in cells:
            if not cell.members:
                continue
            b = cell.bounds
            mx, my = b.center
            quads = [
                BoundingBox(b.xmin, b.ymin, mx, my),
                BoundingBox(mx, b.ymin, b.xmax, my),
                BoundingBox(b.xmin, my, mx, b.ymax),
                BoundingBox(mx, my, b.xmax, b.ymax),
            ]
            buckets: list[list[Hashable]] = [[] for _ in quads]
            # Each member goes to exactly one quadrant: points on the
            # splitting lines go to the left/bottom quadrant.
            for v in cell.members:
                x, y = positions[v]
                if x <= mx:
                    k = 0 if y <= my else 2
                else:
                    k = 1 if y <= my else 3
                buckets[k].append(v)
            for k, q in enumerate(quads):
                if buckets[k]:
                    child = QuadCell(cell.level + 1, q, buckets[k], parent=cell)
                    cell.children.append(child)
                    out.append(child)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """α — the index of the deepest non-empty sentinel set."""
        return len(self.sentinel_sets) - 1

    def sentinels_at(self, level: int) -> list[Hashable]:
        """Copy of the sentinel list at *level*."""
        return list(self.sentinel_sets[level])

    def iter_sentinels(self) -> Iterator[tuple[int, Hashable]]:
        """Yield (level, sentinel) over the whole hierarchy."""
        for level, sentinels in enumerate(self.sentinel_sets):
            for s in sentinels:
                yield level, s

    @property
    def root(self) -> Hashable:
        """The level-0 sentinel (quadtree root)."""
        return self.sentinel_sets[0][0]

    def expected_depth_bound(self) -> float:
        """The grid-case depth ``log4(3N+1) - 1`` from §3.2."""
        n = self.topology.num_nodes
        return math.log(3 * n + 1, 4) - 1

    def __repr__(self) -> str:
        sizes = [len(s) for s in self.sentinel_sets]
        return f"QuadTreeDecomposition(depth={self.depth}, level_sizes={sizes})"

"""Topologies, bounding boxes and the quadtree sentinel hierarchy."""

from repro.geometry.quadtree import QuadCell, QuadTreeDecomposition
from repro.geometry.topology import (
    BoundingBox,
    Topology,
    grid_topology,
    random_geometric_topology,
    scatter_topology,
)

__all__ = [
    "BoundingBox",
    "QuadCell",
    "QuadTreeDecomposition",
    "Topology",
    "grid_topology",
    "random_geometric_topology",
    "scatter_topology",
]

"""Network topologies (paper §8.1).

Three topology families are used by the paper's evaluation:

- a regular grid (the Tao 6×9 buoy array; also the idealized √N × √N grid
  the complexity analysis assumes),
- uniform-random geometric graphs with a small average degree (~4 radio
  neighbours) for the synthetic experiments, and
- random scatterings over a terrain for the Death Valley experiments.

A :class:`Topology` bundles the communication graph, node positions and the
bounding box — everything the quadtree decomposition and the simulator need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_int_at_least, require_positive
from repro.perf.cache import cached_artifact

#: Node count above which :func:`random_geometric_topology` switches from
#: the O(N²) pairwise range test to a spatial-hash cell grid.  Below the
#: threshold the legacy path runs unchanged, so every graph at the paper's
#: scales (≤ a few thousand nodes) — and therefore every pinned experiment
#: table — stays byte-identical.  At and above it, the cell grid produces
#: the *same edge set* (the range predicate is the same ``np.hypot(...) <=
#: radio_range``), and component stitching switches to a centroid-MST
#: variant that is deterministic but may pick different stitch edges than
#: the legacy round-by-round dense-matrix argmin.
SPATIAL_HASH_MIN_N = 4096


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of node positions."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    @property
    def width(self) -> float:
        """Box width."""
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        """Box height."""
        return self.ymax - self.ymin

    @property
    def center(self) -> tuple[float, float]:
        """Box centre point."""
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """Whether (x, y) lies inside the box."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax


@dataclass
class Topology:
    """A communication graph with node positions.

    Attributes
    ----------
    graph:
        The communication graph *CG*.
    positions:
        Mapping node id -> (x, y).
    """

    graph: nx.Graph
    positions: dict[Hashable, tuple[float, float]]
    _bounds: BoundingBox | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        missing = set(self.graph.nodes) - set(self.positions)
        if missing:
            raise ValueError(f"positions missing for nodes: {sorted(missing, key=repr)[:5]}")

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the communication graph."""
        return self.graph.number_of_nodes()

    @property
    def bounds(self) -> BoundingBox:
        """Square bounding box of the node positions (quadtrees want squares)."""
        if self._bounds is None:
            xs = [p[0] for p in self.positions.values()]
            ys = [p[1] for p in self.positions.values()]
            xmin, xmax = min(xs), max(xs)
            ymin, ymax = min(ys), max(ys)
            side = max(xmax - xmin, ymax - ymin)
            # Inflate the shorter axis symmetrically so the box is square;
            # degenerate (single-point) topologies get a unit box.
            if side == 0:
                side = 1.0
            cx, cy = (xmin + xmax) / 2.0, (ymin + ymax) / 2.0
            half = side / 2.0
            self._bounds = BoundingBox(cx - half, cy - half, cx + half, cy + half)
        return self._bounds

    def average_degree(self) -> float:
        """Mean node degree of the communication graph."""
        n = self.graph.number_of_nodes()
        return 2.0 * self.graph.number_of_edges() / n if n else 0.0

    def is_connected(self) -> bool:
        """Whether the communication graph is connected."""
        return self.num_nodes > 0 and nx.is_connected(self.graph)


def grid_topology(rows: int, cols: int, *, spacing: float = 1.0) -> Topology:
    """A rows × cols grid with 4-neighbourhood links (node ids ``r*cols+c``).

    This is the Tao buoy layout (6×9) and the idealized analysis topology.
    """
    require_int_at_least(rows, 1, "rows")
    require_int_at_least(cols, 1, "cols")
    require_positive(spacing, "spacing")
    graph = nx.Graph()
    positions: dict[Hashable, tuple[float, float]] = {}
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            graph.add_node(node)
            positions[node] = (c * spacing, r * spacing)
            if c > 0:
                graph.add_edge(node, node - 1)
            if r > 0:
                graph.add_edge(node, node - cols)
    return Topology(graph, positions)


# Code-version salt "3": 10⁶-node topologies from the vectorised quadtree/
# scale work must not collide with cache entries written by older builds.
@cached_artifact("3")
def random_geometric_topology(
    n: int,
    *,
    seed: int,
    density: float = 0.8,
    target_degree: float = 4.0,
    radio_range: float | None = None,
    connect: bool = True,
) -> Topology:
    """Uniform-random node placement with radio-range links (paper §8.1).

    Nodes are placed uniformly in a square sized so the node density matches
    *density* (paper: 0.7–0.9 nodes per unit area).  Unless *radio_range* is
    given, the range is chosen so the expected neighbour count is
    *target_degree* (paper: ~4 nodes within radio range).

    With *connect* (default), disconnected components are stitched together
    by linking the closest pair of nodes across components — physically this
    models a slightly larger transmit power for the handful of fringe nodes,
    and keeps every experiment on one connected network (the paper implicitly
    assumes a connected *CG*).
    """
    require_int_at_least(n, 1, "n")
    require_positive(density, "density")
    require_positive(target_degree, "target_degree")
    rng = np.random.default_rng(seed)
    side = math.sqrt(n / density)
    coords = rng.uniform(0.0, side, size=(n, 2))
    if radio_range is None:
        # Expected neighbours of a node = (n-1) * pi r^2 / side^2.
        radio_range = side * math.sqrt(target_degree / (math.pi * max(n - 1, 1)))
    else:
        require_positive(radio_range, "radio_range")

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    positions = {i: (float(coords[i, 0]), float(coords[i, 1])) for i in range(n)}
    if n >= SPATIAL_HASH_MIN_N:
        _range_edges_grid(graph, coords, radio_range)
        if connect and n > 1:
            _stitch_components_grid(graph, coords)
    else:
        # O(n^2) range test is fine at the paper's scales (<= a few thousand).
        for i in range(n):
            deltas = coords[i + 1 :] - coords[i]
            dists = np.hypot(deltas[:, 0], deltas[:, 1])
            for offset in np.nonzero(dists <= radio_range)[0]:
                graph.add_edge(i, i + 1 + int(offset))
        if connect and n > 1:
            _stitch_components(graph, coords)
    return Topology(graph, positions)


def scatter_topology(
    points: Mapping[Hashable, tuple[float, float]],
    *,
    radio_range: float,
    connect: bool = True,
) -> Topology:
    """Build a topology from explicit node positions and a radio range."""
    require_positive(radio_range, "radio_range")
    ids = list(points)
    if not ids:
        raise ValueError("points must be non-empty")
    coords = np.asarray([points[i] for i in ids], dtype=np.float64)
    graph = nx.Graph()
    graph.add_nodes_from(ids)
    for a in range(len(ids)):
        deltas = coords[a + 1 :] - coords[a]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        for offset in np.nonzero(dists <= radio_range)[0]:
            graph.add_edge(ids[a], ids[a + 1 + int(offset)])
    if connect and len(ids) > 1:
        _stitch_components(graph, coords, ids=ids)
    positions = {i: (float(points[i][0]), float(points[i][1])) for i in ids}
    return Topology(graph, positions)


def _hash_cells(coords: np.ndarray, cell: float) -> dict[tuple[int, int], np.ndarray]:
    """Bucket point indices by cell of a *cell*-sized square grid.

    Bucket membership lists are ascending (points visited in index order),
    and the dict itself is in first-seen order — both deterministic
    functions of the coordinates.
    """
    keys_x = np.floor(coords[:, 0] / cell).astype(np.int64)
    keys_y = np.floor(coords[:, 1] / cell).astype(np.int64)
    buckets: dict[tuple[int, int], list[int]] = {}
    for i in range(coords.shape[0]):
        buckets.setdefault((int(keys_x[i]), int(keys_y[i])), []).append(i)
    return {key: np.asarray(members, dtype=np.int64) for key, members in buckets.items()}


def _range_edges_grid(graph: nx.Graph, coords: np.ndarray, radio_range: float) -> None:
    """Add all edges with pairwise distance <= radio_range via a cell grid.

    Same edge *set* as the O(n²) loop — the range predicate is the identical
    ``np.hypot(dx, dy) <= radio_range`` on the same float64 coordinates, and
    with cell side = radio_range any in-range pair sits in adjacent cells.
    Edge insertion order differs (grouped by cell rather than strictly
    ascending i) but is deterministic, which is all the BFS tie-breaking
    contract above :data:`SPATIAL_HASH_MIN_N` requires.
    """
    buckets = _hash_cells(coords, radio_range)
    add_edge = graph.add_edge
    for (kx, ky), members in buckets.items():
        blocks = [
            buckets[key]
            for key in (
                (kx + dx, ky + dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
            )
            if key in buckets
        ]
        cand = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        pts = coords[cand]
        for i in members.tolist():
            deltas = pts - coords[i]
            close = np.hypot(deltas[:, 0], deltas[:, 1]) <= radio_range
            for j in cand[close & (cand > i)].tolist():
                add_edge(i, j)


def _stitch_components_grid(graph: nx.Graph, coords: np.ndarray) -> None:
    """Scalable variant of :func:`_stitch_components` for large n.

    At the paper's target degree (~4) a geometric graph sits *below* the
    continuum-percolation threshold (mean degree ≈ 4.51), so there is no
    giant component: a 10⁵-node graph fragments into thousands of
    components, some with thousands of members, and the legacy
    round-by-round core×rest distance matrix is hopeless.  Instead this
    builds a minimum spanning tree over component *centroids* (dense
    vectorized Prim, O(C²) for C components) and realizes each MST edge as
    the closest actual node pair between the two components — one stitch
    edge per MST edge, connected by construction in a single pass.

    Deterministic: components are indexed largest-first (ties on smallest
    member id), centroids average members in ascending id order, Prim
    starts from component 0 and breaks distance ties on the lowest
    component index, and closest-pair ties resolve row-major over the
    ascending member-id matrix.
    """
    components = list(nx.connected_components(graph))
    if len(components) <= 1:
        return
    components.sort(key=lambda comp: (-len(comp), min(comp)))
    members = [np.asarray(sorted(comp), dtype=np.int64) for comp in components]
    centroids = np.asarray([coords[m].mean(axis=0) for m in members])
    n_comp = len(components)

    # Prim over the complete centroid graph.
    in_tree = np.zeros(n_comp, dtype=bool)
    best_dist = np.full(n_comp, np.inf)
    best_from = np.zeros(n_comp, dtype=np.int64)
    current = 0
    in_tree[0] = True
    for _ in range(n_comp - 1):
        deltas = centroids - centroids[current]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        closer = ~in_tree & (dists < best_dist)
        best_dist[closer] = dists[closer]
        best_from[closer] = current
        nxt = int(np.argmin(np.where(in_tree, np.inf, best_dist)))
        # Realize the MST edge (best_from[nxt], nxt) as the closest
        # cross-component node pair.  Chunked over the first component so
        # two large components never materialize a giant |A|×|B| matrix;
        # strict < keeps the row-major tie-break across chunks.
        ma, mb = members[best_from[nxt]], members[nxt]
        pts_b = coords[mb]
        pair_best = np.inf
        a = b = 0
        for start in range(0, len(ma), 1024):
            block = ma[start : start + 1024]
            pair = coords[block][:, None, :] - pts_b[None, :, :]
            pair_dists = np.hypot(pair[..., 0], pair[..., 1])
            i, j = np.unravel_index(np.argmin(pair_dists), pair_dists.shape)
            if pair_dists[i, j] < pair_best:
                pair_best = float(pair_dists[i, j])
                a, b = start + int(i), int(j)
        graph.add_edge(int(ma[a]), int(mb[b]))
        in_tree[nxt] = True
        best_dist[nxt] = np.inf
        current = nxt


def _stitch_components(graph: nx.Graph, coords: np.ndarray, ids: list | None = None) -> None:
    """Connect graph components by linking nearest cross-component node pairs."""
    if ids is None:
        ids = list(range(coords.shape[0]))
    index_of = {node: k for k, node in enumerate(ids)}
    while True:
        components = list(nx.connected_components(graph))
        if len(components) <= 1:
            return
        # Link the largest component to the closest node outside it.
        components.sort(key=len, reverse=True)
        core = components[0]
        core_idx = np.asarray([index_of[v] for v in core])
        rest = [v for comp in components[1:] for v in comp]
        rest_idx = np.asarray([index_of[v] for v in rest])
        diffs = coords[core_idx][:, None, :] - coords[rest_idx][None, :, :]
        dists = np.hypot(diffs[..., 0], diffs[..., 1])
        a, b = np.unravel_index(np.argmin(dists), dists.shape)
        graph.add_edge(ids[core_idx[a]], ids[rest_idx[b]])

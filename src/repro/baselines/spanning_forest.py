"""Spanning-forest clustering baseline (paper §8.3).

A greedy, low-communication distributed alternative in two phases:

1. **Forest building.**  Every node broadcasts its feature to its
   neighbours, then selects as parent the neighbour with the smallest
   feature distance *among neighbours with a smaller id* (the id order
   guarantees acyclicity).  Nodes with no smaller-id neighbour become tree
   roots.
2. **δ-partitioning.**  Each node keeps a ``height`` — an upper bound on
   the feature-path distance from itself to any leaf of its accepted
   subtree.  Leaves report ``(height=0, feature)`` up; a parent receiving
   a child report ``h = child_height + d(F_child, F_parent)`` detaches
   subtrees whenever two accepted heights could sum beyond δ, always
   cutting the tallest first (the paper's *highest_child* rule).  Every
   detached subtree becomes a new cluster rooted at the detached child.

Validity note.  The paper's parent keeps only a single ``height`` and one
``highest_child``; after a detach the surviving second-tallest subtree is
unknown to it, so pathological report orders could leave two subtrees whose
heights sum beyond δ.  Our parent keeps the *list* of accepted child
heights (local memory only — no extra communication) and detaches tallest-
first until every pairwise sum fits, which preserves the paper's greedy
behaviour while making the δ-guarantee unconditional.  This is recorded in
DESIGN.md.

The protocol runs on the simulated network, so message costs (feature
broadcasts, parent selections, height reports, detach instructions) are
measured, not estimated.  Both time and message complexity are O(N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro._validation import require_positive
from repro.core.delta import Clustering, clustering_from_assignment
from repro.features.metrics import Metric
from repro.geometry.topology import Topology
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.node import ProtocolNode
from repro.sim.stats import MessageStats


@dataclass
class SpanningForestResult:
    """Outcome of one spanning-forest clustering run."""

    clustering: Clustering
    stats: MessageStats
    completion_time: float

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return self.clustering.num_clusters

    @property
    def total_messages(self) -> int:
        """Total communication charged, in the paper's value-messages."""
        return self.stats.total_values


class SpanningForestNode(ProtocolNode):
    """Per-node runtime for the two-phase spanning-forest protocol."""

    def __init__(
        self,
        node_id: Hashable,
        network: Network,
        feature: np.ndarray,
        *,
        metric: Metric,
        delta: float,
    ):
        super().__init__(node_id, network, feature)
        self.metric = metric
        self.delta = delta
        self.neighbor_features: dict[Hashable, np.ndarray] = {}
        self.parent: Hashable | None = None  # forest parent (None => root)
        self.children: set[Hashable] = set()
        self.pending_children = 0
        self.accepted_heights: dict[Hashable, float] = {}
        self.detached = False  # True => roots a new cluster after a cut
        self.reported = False
        self.done_at: float | None = None

    # ------------------------------------------------------------------
    # phase 0/1: feature exchange and parent selection
    # ------------------------------------------------------------------
    def broadcast_feature(self) -> None:
        """Phase 0: announce this node's feature to all neighbours."""
        self.broadcast("feature", payload=self.feature, values=int(self.feature.shape[0]))

    def handle_feature(self, message: Message) -> None:
        """Collect a neighbour's feature; select a parent once all arrived."""
        self.neighbor_features[message.src] = message.payload
        if len(self.neighbor_features) == self.network.degree(self.node_id):
            self._select_parent()

    def _select_parent(self) -> None:
        candidates = [
            (self.metric.distance(self.feature, feature), neighbor)
            for neighbor, feature in self.neighbor_features.items()
            if _id_less(neighbor, self.node_id)
        ]
        if candidates:
            candidates.sort(key=lambda pair: (pair[0], repr(pair[1])))
            self.parent = candidates[0][1]
            self.send(self.parent, "select")
        # All selects arrive one hop later; then nodes know their children
        # and leaves can start the height cascade.
        self.set_timer(2.0 * self.network.hop_delay, self._begin_heights)

    def handle_select(self, message: Message) -> None:
        """Record a neighbour that chose this node as forest parent."""
        self.children.add(message.src)

    def _begin_heights(self) -> None:
        self.pending_children = len(self.children)
        if self.pending_children == 0:
            self._report_up(height=0.0)

    # ------------------------------------------------------------------
    # phase 2: height aggregation and detaching
    # ------------------------------------------------------------------
    def handle_height(self, message: Message) -> None:
        """Fold a child's height report in, detaching oversized subtrees."""
        child_height, child_feature = message.payload
        child = message.src
        h = child_height + self.metric.distance(child_feature, self.feature)
        self.accepted_heights[child] = h
        # Detach tallest-first until every pairwise height sum fits in δ and
        # the tallest alone fits (a cluster member must stay within δ of
        # every leaf through this node).
        while self.accepted_heights:
            tallest = max(self.accepted_heights.items(), key=lambda kv: (kv[1], repr(kv[0])))
            second = max(
                (v for k, v in self.accepted_heights.items() if k != tallest[0]),
                default=0.0,
            )
            if tallest[1] + second <= self.delta and tallest[1] <= self.delta:
                break
            self.accepted_heights.pop(tallest[0])
            self.children.discard(tallest[0])
            self.send(tallest[0], "detach")
        self.pending_children -= 1
        if self.pending_children == 0:
            height = max(self.accepted_heights.values(), default=0.0)
            self._report_up(height)

    def handle_detach(self, message: Message) -> None:
        """Become the root of a new cluster (parent cut this subtree)."""
        self.parent = None
        self.detached = True

    def _report_up(self, height: float) -> None:
        self.reported = True
        self.done_at = self.now
        if self.parent is not None:
            self.send(
                self.parent,
                "height",
                payload=(height, self.feature),
                values=int(self.feature.shape[0]) + 1,
            )


def run_spanning_forest(
    topology: Topology,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    delta: float,
    *,
    network: Network | None = None,
) -> SpanningForestResult:
    """Run the spanning-forest clustering protocol over *topology*."""
    require_positive(delta, "delta")
    if network is None:
        network = Network(topology.graph)
    start_stats = network.stats.snapshot()

    nodes: dict[Hashable, SpanningForestNode] = {}
    for node_id in topology.graph.nodes:
        nodes[node_id] = SpanningForestNode(
            node_id,
            network,
            np.asarray(features[node_id], dtype=np.float64),
            metric=metric,
            delta=delta,
        )
    for node in nodes.values():
        network.kernel.schedule(0.0, node.broadcast_feature)
        if network.graph.degree(node.node_id) == 0:
            network.kernel.schedule(0.0, node._select_parent)
    network.run(max_events=100 * len(nodes) + 10_000)

    # A node's detach cut its link; remaining parent pointers form the
    # cluster forest.  Roots: original forest roots + detached nodes.
    assignment: dict[Hashable, Hashable] = {}
    parents: dict[Hashable, Hashable] = {}
    for node_id, node in nodes.items():
        parents[node_id] = node.parent if node.parent is not None else node_id
    for node_id in nodes:
        current = node_id
        seen = {current}
        while parents[current] != current:
            current = parents[current]
            if current in seen:
                raise RuntimeError(f"spanning-forest parent cycle at {current!r}")
            seen.add(current)
        assignment[node_id] = current

    clustering = clustering_from_assignment(
        topology.graph,
        assignment,
        {node_id: node.feature for node_id, node in nodes.items()},
        parents=parents,
    )
    completion = max(
        (node.done_at for node in nodes.values() if node.done_at is not None), default=0.0
    )
    return SpanningForestResult(clustering, network.stats.diff(start_stats), completion)


def _id_less(a: Hashable, b: Hashable) -> bool:
    """Total order on node ids (falls back to repr for mixed types)."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return repr(a) < repr(b)

"""Centralized spectral-clustering baseline (paper §8.3).

Every node ships its model coefficients to a base station, which runs the
Ng–Jordan–Weiss spectral decomposition on the communication-graph affinity
matrix, partitioning the network into *k* clusters; the algorithm is
repeated with growing *k* and the smallest *k* whose clusters all satisfy
the δ-condition is kept.

Two deliberate clarifications of the paper's description (see DESIGN.md):

- The paper defines affinity ``a(i,j) = d(F_i, F_j)`` on edges, but a raw
  *distance* used as *affinity* inverts similarity.  Following the cited
  NJW paper we default to the Gaussian kernel
  ``a(i,j) = exp(-d²/(2σ²))`` (σ = median edge distance); the literal
  variant is available as ``affinity="distance"`` for comparison.
- Spectral partitions need not induce connected subgraphs, while
  δ-clusters must be connected; each spectral part is therefore split into
  its connected components before the δ-check, and the reported cluster
  count is the number of components.

Communication cost of the centralized scheme (used by Figs 12–13): every
node sends its ``dim`` coefficients to the base station over multi-hop
routes — ``Σ_i dim · hops(i, base)`` — plus the slack-triggered coefficient
updates modelled by
:class:`repro.core.maintenance.CentralizedUpdateBaseline`.

Performance: everything about a spectral attempt at a given *k* — the
affinity matrix, the Laplacian eigendecomposition, the k-means labels, the
connected-component split, even the resulting :class:`Clustering` — is
independent of δ; only the final δ-compactness check is not.  A
:class:`SpectralSolver` therefore caches all of it per (graph, features)
instance, so a δ sweep (Figs 8, 9, 11) pays for one eigendecomposition and
one k-means per distinct *k* instead of one per (δ, k) pair.  This is the
change that restores Fig 9 to the paper's 2500-sensor × 5-topology scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_int_at_least, require_positive
from repro.core.delta import Clustering, check_delta_compact, clustering_from_assignment
from repro.features.metrics import Metric
from repro.perf.cache import get_cache

#: Slop used by every δ-compactness comparison (matches check_delta_compact).
_DELTA_TOLERANCE = 1e-9


@dataclass
class SpectralResult:
    """Outcome of the centralized spectral search."""

    clustering: Clustering
    k_used: int  # the k accepted by the search (number of spectral parts)
    messages: int  # coefficient-shipping cost to the base station

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return self.clustering.num_clusters


def centralized_collection_cost(
    graph: nx.Graph, base_station: Hashable, feature_dim: int
) -> int:
    """Messages to ship every node's coefficients to the base station."""
    require_int_at_least(feature_dim, 1, "feature_dim")
    hops = nx.single_source_shortest_path_length(graph, base_station)
    return sum(feature_dim * max(h, 1) for node, h in hops.items() if node != base_station)


class SpectralSolver:
    """δ-independent spectral state, reusable across a δ sweep.

    Construct once per (graph, features, metric) instance and pass to
    :func:`spectral_clustering_search` for every δ; all heavy state — the
    affinity matrix, the eigendecomposition, per-k partitions and
    clusterings — is computed once and shared.  Returned clusterings are
    cached objects; treat them as immutable (everything else in this
    library already does).
    """

    def __init__(
        self,
        graph: nx.Graph,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        *,
        affinity: str = "gaussian",
        seed: int = 0,
    ):
        if affinity not in ("gaussian", "distance"):
            raise ValueError(f"affinity must be 'gaussian' or 'distance', got {affinity!r}")
        self.graph = graph
        self.features = features
        self.metric = metric
        self.affinity = affinity
        self.seed = seed
        self.nodes = list(graph.nodes)
        if not self.nodes:
            raise ValueError("graph must have at least one node")
        self.index_of = {node: i for i, node in enumerate(self.nodes)}
        self._affinity_matrix: np.ndarray | None = None
        self._embedding_cache: dict[str, np.ndarray] = {}
        # Per-k caches (everything here is δ-independent).
        self._assignments: dict[int, dict[Hashable, Hashable]] = {}
        self._member_indices: dict[int, list[np.ndarray]] = {}
        self._member_nodes: dict[int, list[list[Hashable]]] = {}
        self._clusterings: dict[int, Clustering] = {}
        self._feature_matrix = self._build_feature_matrix()

    def _build_feature_matrix(self) -> np.ndarray | None:
        try:
            matrix = np.asarray(
                [np.atleast_1d(np.asarray(self.features[v], dtype=np.float64)) for v in self.nodes]
            )
        except (TypeError, ValueError):
            return None  # non-vector features (e.g. MatrixMetric node ids)
        if matrix.ndim != 2:
            return None
        return matrix

    @property
    def feature_dim(self) -> int:
        """Dimension of one node's coefficient vector."""
        return int(np.atleast_1d(np.asarray(self.features[self.nodes[0]])).shape[0])

    def affinity_matrix(self) -> np.ndarray:
        """The edge affinity matrix (computed once, then cached)."""
        if self._affinity_matrix is None:
            self._affinity_matrix = _edge_affinity(
                self.graph, self.features, self.metric, self.nodes, self.index_of, self.affinity
            )
        return self._affinity_matrix

    def _partition_members(self, k: int) -> tuple[list[np.ndarray], list[list[Hashable]]]:
        """Connected components of the k-way spectral partition, as index
        arrays (for the vectorized δ-check) and node lists."""
        if k not in self._member_indices:
            labels = _spectral_partition(self.affinity_matrix(), k, self.seed, self._embedding_cache)
            assignment = _components_assignment(self.graph, self.nodes, labels)
            members: dict[Hashable, list[Hashable]] = {}
            for node, root in assignment.items():
                members.setdefault(root, []).append(node)
            self._assignments[k] = assignment
            self._member_nodes[k] = list(members.values())
            index_of = self.index_of
            self._member_indices[k] = [
                np.fromiter((index_of[v] for v in nodes), dtype=np.intp, count=len(nodes))
                for nodes in self._member_nodes[k]
            ]
        return self._member_indices[k], self._member_nodes[k]

    def _compact(self, idx: np.ndarray, nodes: list[Hashable], delta: float) -> bool:
        """δ-compactness of one cluster, vectorized where the metric allows."""
        if idx.shape[0] <= 1:
            return True
        fmatrix = self._feature_matrix
        if fmatrix is None:
            return not check_delta_compact(nodes, self.features, self.metric, delta, limit=1)
        rows = fmatrix[idx]
        if rows.shape[1] == 1:
            # 1-d features: the vectorized metrics are all monotone in
            # |a - b|, so the max pairwise distance is attained by the
            # value range — an O(m) check instead of O(m²).
            extremes = np.array([[rows.min()], [rows.max()]])
            distances = self.metric.pairwise_matrix(extremes)
            if distances is not None:
                return float(distances[0, 1]) <= delta + _DELTA_TOLERANCE
        distances = self.metric.pairwise_matrix(rows)
        if distances is None:
            return not check_delta_compact(nodes, self.features, self.metric, delta, limit=1)
        return not bool(np.any(distances > delta + _DELTA_TOLERANCE))

    def attempt(self, k: int, delta: float) -> Clustering | None:
        """The k-way spectral clustering if it satisfies δ, else None."""
        member_indices, member_nodes = self._partition_members(k)
        for idx, nodes in zip(member_indices, member_nodes):
            if not self._compact(idx, nodes, delta):
                return None
        if k not in self._clusterings:
            self._clusterings[k] = clustering_from_assignment(
                self.graph, self._assignments[k], self.features
            )
        return self._clusterings[k]

    def collection_cost(self, base_station: Hashable) -> int:
        """Coefficient-shipping cost to *base_station* (δ-independent)."""
        return centralized_collection_cost(self.graph, base_station, self.feature_dim)


def spectral_clustering_search(
    graph: nx.Graph | None = None,
    features: Mapping[Hashable, np.ndarray] | None = None,
    metric: Metric | None = None,
    delta: float = 0.0,
    *,
    base_station: Hashable | None = None,
    affinity: str = "gaussian",
    seed: int = 0,
    max_k: int | None = None,
    search: str = "linear",
    solver: SpectralSolver | None = None,
) -> SpectralResult:
    """Smallest-k spectral δ-clustering at the base station (paper §8.3).

    Returns the accepted clustering; its message cost covers shipping the
    coefficients in (clustering itself is computed at the powered base
    station, which the paper treats as free).

    ``search="linear"`` tries k = 1, 2, ... exactly as the paper describes;
    ``search="doubling"`` doubles k to find a feasible value and then
    bisects for the smallest one (feasibility is monotone enough in
    practice), which matters on 2500-node inputs.

    Pass a prebuilt :class:`SpectralSolver` when sweeping δ over one
    dataset — the eigendecomposition and the per-k partitions are then
    computed once for the whole sweep instead of once per δ.
    """
    require_positive(delta, "delta")
    if search not in ("linear", "doubling"):
        raise ValueError(f"search must be 'linear' or 'doubling', got {search!r}")
    if solver is None:
        if graph is None or features is None or metric is None:
            raise ValueError("either a solver or (graph, features, metric) is required")
        solver = SpectralSolver(graph, features, metric, affinity=affinity, seed=seed)
    nodes = solver.nodes
    n = len(nodes)
    if base_station is None:
        base_station = nodes[0]
    if max_k is None:
        max_k = n

    def attempt(k: int) -> Clustering | None:
        return solver.attempt(k, delta)

    accepted: Clustering | None = None
    k_used = n
    if search == "linear":
        for k in range(1, max_k + 1):
            accepted = attempt(k)
            if accepted is not None:
                k_used = k
                break
    else:
        feasible_k: int | None = None
        feasible: Clustering | None = None
        last_infeasible = 0
        k = 1
        while k < max_k:
            candidate = attempt(k)
            if candidate is not None:
                feasible_k, feasible = k, candidate
                break
            last_infeasible = k
            k *= 2
        if feasible_k is None:
            # Doubling overshot: k = max_k (== n gives singletons) is
            # always feasible; bisect below it.
            candidate = attempt(max_k)
            if candidate is not None:
                feasible_k, feasible = max_k, candidate
        if feasible_k is not None and feasible_k > last_infeasible + 1:
            low, high = last_infeasible + 1, feasible_k
            while low < high:
                mid = (low + high) // 2
                candidate = attempt(mid)
                if candidate is not None:
                    high, feasible, feasible_k = mid, candidate, mid
                else:
                    low = mid + 1
        accepted, k_used = feasible, (feasible_k if feasible_k is not None else n)
    if accepted is None:
        # Degenerate fallback: singletons always satisfy the δ-condition.
        accepted = clustering_from_assignment(
            solver.graph, {v: v for v in nodes}, solver.features
        )
        k_used = n

    messages = solver.collection_cost(base_station)
    return SpectralResult(accepted, k_used, messages)


def _edge_affinity(
    graph: nx.Graph,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    nodes: list[Hashable],
    index_of: Mapping[Hashable, int],
    affinity: str,
) -> np.ndarray:
    if affinity not in ("gaussian", "distance"):
        raise ValueError(f"affinity must be 'gaussian' or 'distance', got {affinity!r}")
    n = len(nodes)
    matrix = np.zeros((n, n), dtype=np.float64)
    edge_distances = []
    for a, b in graph.edges:
        d = metric.distance(features[a], features[b])
        edge_distances.append(d)
        matrix[index_of[a], index_of[b]] = d
        matrix[index_of[b], index_of[a]] = d
    if affinity == "distance":
        return matrix
    positive = [d for d in edge_distances if d > 0]
    sigma = float(np.median(positive)) if positive else 1.0
    if not np.isfinite(sigma) or sigma <= 0:
        sigma = 1.0
    out = np.zeros_like(matrix)
    for a, b in graph.edges:
        i, j = index_of[a], index_of[b]
        out[i, j] = out[j, i] = np.exp(-(matrix[i, j] ** 2) / (2.0 * sigma**2))
    return out


def _spectral_partition(
    affinity: np.ndarray, k: int, seed: int, cache: dict[str, np.ndarray]
) -> np.ndarray:
    """NJW: normalized Laplacian -> top-k eigenvectors -> k-means labels."""
    n = affinity.shape[0]
    if k >= n:
        return np.arange(n)
    if k == 1:
        return np.zeros(n, dtype=int)
    if "eigvecs" not in cache:

        def compute() -> np.ndarray:
            degree = affinity.sum(axis=1)
            inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
            lsym = inv_sqrt[:, None] * affinity * inv_sqrt[None, :]
            eigvals, eigvecs = np.linalg.eigh(lsym)
            return eigvecs[:, ::-1]

        # The eigendecomposition is the O(N³) heart of the solver and a
        # pure function of the affinity matrix; with REPRO_CACHE set it is
        # content-addressed by that matrix (hashing N² floats costs
        # milliseconds, eigh at N=2500 costs tens of seconds).
        artifact = get_cache()
        if artifact is None:
            cache["eigvecs"] = compute()
        else:
            cache["eigvecs"] = artifact.get_or_compute(
                "spectral_eigvecs", {"affinity": affinity}, compute, salt="1"
            )
    eigvecs = cache["eigvecs"]
    # Cap the embedding dimension: for large k the extra eigenvectors add
    # little but make k-means quadratically slower (standard practice).
    embedding = eigvecs[:, : min(k, 32)]
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    embedding = embedding / np.maximum(norms, 1e-12)
    return _kmeans(embedding, k, seed)


def _kmeans(points: np.ndarray, k: int, seed: int, iterations: int = 50) -> np.ndarray:
    """Plain Lloyd's k-means with k-means++ seeding (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest = np.sum((points - centers[0]) ** 2, axis=1)
    for c in range(1, k):
        total = closest.sum()
        if total <= 1e-18:
            centers[c:] = points[int(rng.integers(n))]
            break
        probabilities = closest / total
        choice = int(rng.choice(n, p=probabilities))
        centers[c] = points[choice]
        closest = np.minimum(closest, np.sum((points - centers[c]) ** 2, axis=1))
    labels = np.zeros(n, dtype=int)
    # Distance columns are refreshed per center, and only for centers that
    # moved since the previous iteration: an unchanged center yields a
    # bitwise-identical column, so skipping it cannot alter the matrix (and
    # per-center columns match the (n, k, d) broadcast bit for bit — the sum
    # reduces the same d elements in the same order).  Lloyd's converges
    # centre by centre, so late iterations touch only a few columns.
    distances = np.empty((n, k))
    changed: Iterable[int] = range(k)
    for iteration in range(iterations):
        for c in changed:
            diff = points - centers[c]
            distances[:, c] = np.sum(diff**2, axis=1)
        new_labels = distances.argmin(axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        # Group points by label via one stable argsort instead of k boolean
        # masks; slices select member rows in the same ascending-index
        # order a mask would, so each mean is bitwise identical.
        counts = np.bincount(labels, minlength=k)
        order = np.argsort(labels, kind="stable")
        start = 0
        moved = []
        for c in range(k):
            count = counts[c]
            if count:
                stop = start + count
                new_center = points[order[start:stop]].mean(axis=0)
                start = stop
                if not np.array_equal(new_center, centers[c]):
                    centers[c] = new_center
                    moved.append(c)
        changed = moved
    return labels


def _components_assignment(
    graph: nx.Graph, nodes: list[Hashable], labels: np.ndarray
) -> dict[Hashable, Hashable]:
    """Split each spectral part into connected components; root = min-id.

    Components are found with a BFS that mirrors
    ``nx.connected_components`` on the induced subgraph — same seed order
    (graph node order filtered to the part) and same set-construction
    order — without materializing a subgraph view per part.
    """
    assignment: dict[Hashable, Hashable] = {}
    by_label: dict[int, list[Hashable]] = {}
    for node, label in zip(nodes, labels):
        by_label.setdefault(int(label), []).append(node)
    adj = graph._adj
    for cluster_nodes in by_label.values():
        member_set = set(cluster_nodes)
        done: set[Hashable] = set()
        for source in cluster_nodes:
            if source in done:
                continue
            component = _member_bfs(adj, member_set, source)
            done |= component
            root = min(component, key=repr)
            for node in component:
                assignment[node] = root
    return assignment


def _member_bfs(
    adj: Mapping[Hashable, Mapping[Hashable, dict]],
    member_set: set[Hashable],
    source: Hashable,
) -> set[Hashable]:
    """BFS within *member_set*; replicates ``nx._plain_bfs`` add order."""
    seen = {source}
    nextlevel = [source]
    while nextlevel:
        thislevel = nextlevel
        nextlevel = []
        for v in thislevel:
            for w in adj[v]:
                if w in member_set and w not in seen:
                    seen.add(w)
                    nextlevel.append(w)
    return seen

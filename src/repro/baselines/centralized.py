"""Centralized spectral-clustering baseline (paper §8.3).

Every node ships its model coefficients to a base station, which runs the
Ng–Jordan–Weiss spectral decomposition on the communication-graph affinity
matrix, partitioning the network into *k* clusters; the algorithm is
repeated with growing *k* and the smallest *k* whose clusters all satisfy
the δ-condition is kept.

Two deliberate clarifications of the paper's description (see DESIGN.md):

- The paper defines affinity ``a(i,j) = d(F_i, F_j)`` on edges, but a raw
  *distance* used as *affinity* inverts similarity.  Following the cited
  NJW paper we default to the Gaussian kernel
  ``a(i,j) = exp(-d²/(2σ²))`` (σ = median edge distance); the literal
  variant is available as ``affinity="distance"`` for comparison.
- Spectral partitions need not induce connected subgraphs, while
  δ-clusters must be connected; each spectral part is therefore split into
  its connected components before the δ-check, and the reported cluster
  count is the number of components.

Communication cost of the centralized scheme (used by Figs 12–13): every
node sends its ``dim`` coefficients to the base station over multi-hop
routes — ``Σ_i dim · hops(i, base)`` — plus the slack-triggered coefficient
updates modelled by
:class:`repro.core.maintenance.CentralizedUpdateBaseline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_int_at_least, require_positive
from repro.core.delta import Clustering, check_delta_compact, clustering_from_assignment
from repro.features.metrics import Metric


@dataclass
class SpectralResult:
    """Outcome of the centralized spectral search."""

    clustering: Clustering
    k_used: int  # the k accepted by the search (number of spectral parts)
    messages: int  # coefficient-shipping cost to the base station

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return self.clustering.num_clusters


def centralized_collection_cost(
    graph: nx.Graph, base_station: Hashable, feature_dim: int
) -> int:
    """Messages to ship every node's coefficients to the base station."""
    require_int_at_least(feature_dim, 1, "feature_dim")
    hops = nx.single_source_shortest_path_length(graph, base_station)
    return sum(feature_dim * max(h, 1) for node, h in hops.items() if node != base_station)


def spectral_clustering_search(
    graph: nx.Graph,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    delta: float,
    *,
    base_station: Hashable | None = None,
    affinity: str = "gaussian",
    seed: int = 0,
    max_k: int | None = None,
    search: str = "linear",
) -> SpectralResult:
    """Smallest-k spectral δ-clustering at the base station (paper §8.3).

    Returns the accepted clustering; its message cost covers shipping the
    coefficients in (clustering itself is computed at the powered base
    station, which the paper treats as free).

    ``search="linear"`` tries k = 1, 2, ... exactly as the paper describes;
    ``search="doubling"`` doubles k to find a feasible value and then
    bisects for the smallest one (feasibility is monotone enough in
    practice), which matters on 2500-node inputs.
    """
    require_positive(delta, "delta")
    if search not in ("linear", "doubling"):
        raise ValueError(f"search must be 'linear' or 'doubling', got {search!r}")
    nodes = list(graph.nodes)
    n = len(nodes)
    if n == 0:
        raise ValueError("graph must have at least one node")
    if base_station is None:
        base_station = nodes[0]
    if max_k is None:
        max_k = n
    index_of = {node: i for i, node in enumerate(nodes)}

    affinity_matrix = _edge_affinity(graph, features, metric, nodes, index_of, affinity)
    embedding_cache: dict[str, np.ndarray] = {}

    def attempt(k: int) -> Clustering | None:
        labels = _spectral_partition(affinity_matrix, k, seed, embedding_cache)
        assignment = _components_assignment(graph, nodes, labels)
        members: dict[Hashable, list[Hashable]] = {}
        for node, root in assignment.items():
            members.setdefault(root, []).append(node)
        for cluster_nodes in members.values():
            if check_delta_compact(cluster_nodes, features, metric, delta) is not None:
                return None
        return clustering_from_assignment(graph, assignment, features)

    accepted: Clustering | None = None
    k_used = n
    if search == "linear":
        for k in range(1, max_k + 1):
            accepted = attempt(k)
            if accepted is not None:
                k_used = k
                break
    else:
        feasible_k: int | None = None
        feasible: Clustering | None = None
        last_infeasible = 0
        k = 1
        while k < max_k:
            candidate = attempt(k)
            if candidate is not None:
                feasible_k, feasible = k, candidate
                break
            last_infeasible = k
            k *= 2
        if feasible_k is None:
            # Doubling overshot: k = max_k (== n gives singletons) is
            # always feasible; bisect below it.
            candidate = attempt(max_k)
            if candidate is not None:
                feasible_k, feasible = max_k, candidate
        if feasible_k is not None and feasible_k > last_infeasible + 1:
            low, high = last_infeasible + 1, feasible_k
            while low < high:
                mid = (low + high) // 2
                candidate = attempt(mid)
                if candidate is not None:
                    high, feasible, feasible_k = mid, candidate, mid
                else:
                    low = mid + 1
        accepted, k_used = feasible, (feasible_k if feasible_k is not None else n)
    if accepted is None:
        # Degenerate fallback: singletons always satisfy the δ-condition.
        accepted = clustering_from_assignment(graph, {v: v for v in nodes}, features)
        k_used = n

    dim = int(np.atleast_1d(np.asarray(features[nodes[0]])).shape[0])
    messages = centralized_collection_cost(graph, base_station, dim)
    return SpectralResult(accepted, k_used, messages)


def _edge_affinity(
    graph: nx.Graph,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    nodes: list[Hashable],
    index_of: Mapping[Hashable, int],
    affinity: str,
) -> np.ndarray:
    if affinity not in ("gaussian", "distance"):
        raise ValueError(f"affinity must be 'gaussian' or 'distance', got {affinity!r}")
    n = len(nodes)
    matrix = np.zeros((n, n), dtype=np.float64)
    edge_distances = []
    for a, b in graph.edges:
        d = metric.distance(features[a], features[b])
        edge_distances.append(d)
        matrix[index_of[a], index_of[b]] = d
        matrix[index_of[b], index_of[a]] = d
    if affinity == "distance":
        return matrix
    positive = [d for d in edge_distances if d > 0]
    sigma = float(np.median(positive)) if positive else 1.0
    if not np.isfinite(sigma) or sigma <= 0:
        sigma = 1.0
    out = np.zeros_like(matrix)
    for a, b in graph.edges:
        i, j = index_of[a], index_of[b]
        out[i, j] = out[j, i] = np.exp(-(matrix[i, j] ** 2) / (2.0 * sigma**2))
    return out


def _spectral_partition(
    affinity: np.ndarray, k: int, seed: int, cache: dict[str, np.ndarray]
) -> np.ndarray:
    """NJW: normalized Laplacian -> top-k eigenvectors -> k-means labels."""
    n = affinity.shape[0]
    if k >= n:
        return np.arange(n)
    if k == 1:
        return np.zeros(n, dtype=int)
    if "eigvecs" not in cache:
        degree = affinity.sum(axis=1)
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
        lsym = inv_sqrt[:, None] * affinity * inv_sqrt[None, :]
        eigvals, eigvecs = np.linalg.eigh(lsym)
        cache["eigvecs"] = eigvecs[:, ::-1]
    eigvecs = cache["eigvecs"]
    # Cap the embedding dimension: for large k the extra eigenvectors add
    # little but make k-means quadratically slower (standard practice).
    embedding = eigvecs[:, : min(k, 32)]
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    embedding = embedding / np.maximum(norms, 1e-12)
    return _kmeans(embedding, k, seed)


def _kmeans(points: np.ndarray, k: int, seed: int, iterations: int = 50) -> np.ndarray:
    """Plain Lloyd's k-means with k-means++ seeding (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest = np.sum((points - centers[0]) ** 2, axis=1)
    for c in range(1, k):
        total = closest.sum()
        if total <= 1e-18:
            centers[c:] = points[int(rng.integers(n))]
            break
        probabilities = closest / total
        choice = int(rng.choice(n, p=probabilities))
        centers[c] = points[choice]
        closest = np.minimum(closest, np.sum((points - centers[c]) ** 2, axis=1))
    labels = np.zeros(n, dtype=int)
    for iteration in range(iterations):
        distances = np.sum((points[:, None, :] - centers[None, :, :]) ** 2, axis=2)
        new_labels = distances.argmin(axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(k):
            mask = labels == c
            if mask.any():
                centers[c] = points[mask].mean(axis=0)
    return labels


def _components_assignment(
    graph: nx.Graph, nodes: list[Hashable], labels: np.ndarray
) -> dict[Hashable, Hashable]:
    """Split each spectral part into connected components; root = min-id."""
    assignment: dict[Hashable, Hashable] = {}
    by_label: dict[int, list[Hashable]] = {}
    for node, label in zip(nodes, labels):
        by_label.setdefault(int(label), []).append(node)
    for cluster_nodes in by_label.values():
        sub = graph.subgraph(cluster_nodes)
        for component in nx.connected_components(sub):
            root = min(component, key=repr)
            for node in component:
                assignment[node] = root
    return assignment

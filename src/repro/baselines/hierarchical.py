"""Distributed hierarchical clustering baseline (paper §8.3).

Bottom-up agglomeration: every node starts as a singleton cluster; in each
round, neighbouring clusters that satisfy the δ-condition evaluate a
*fitness* (the diameter of the hypothetical merger) and a pair merges when
the two clusters are each other's *best_candidate*.  Merging continues
until no pair can merge — the notion of optimality the spanning-forest
baseline lacks, bought with O(N²) communication: every candidate evaluation
travels from the boundary to both cluster leaders, every round.

Diameter rule.  The paper sets the merged diameter to
``max(m_i, m_j + d(F_ri, F_rj))`` (for ``m_i >= m_j``), which can
*understate* the true worst-case pairwise bound ``m_i + d + m_j`` and so
may admit later merges that break δ-compactness.  The paper's expression
is kept as the *fitness* (a ranking key only); for the stored diameter
three rules are available:

- ``"exact"`` (default): the leader keeps its members' features — the
  "exchange of data in every round of merger" the paper names as this
  algorithm's cost — and computes the true merged diameter, charged as
  shipping the absorbed cluster's features between the leaders.  Best
  quality, every cluster provably a δ-cluster, highest communication
  (the O(N²) behaviour of Figs 12–13).
- ``"safe"``: store ``m_i + d + m_j``.  Cheap and always valid, but
  conservative (blocks some valid merges).
- ``"paper"``: the literal rule, for comparison; may emit clusters that
  violate δ-compactness.  Recorded in DESIGN.md.

Communication accounting per round, mirroring the message flows the paper
describes (§8.5):

- each pair of adjacent clusters exchanges ``(root feature, diameter)``
  over one boundary edge: ``2·(dim+1)`` values;
- each side relays the candidate information from the boundary node to its
  leader over the cluster tree: ``hops·(dim+1)`` values each;
- a merge commits with a leader-to-leader confirmation over the boundary
  (``2`` hops-worth of control values) and the absorbed cluster's members
  learn the new root over their tree edges (1 value per member).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_positive
from repro.core.delta import Clustering, clustering_from_assignment
from repro.features.metrics import Metric, as_feature
from repro.sim.messages import CATEGORY_DATA
from repro.sim.stats import MessageStats


@dataclass
class HierarchicalResult:
    """Outcome of one hierarchical clustering run."""

    clustering: Clustering
    stats: MessageStats
    rounds: int

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return self.clustering.num_clusters

    @property
    def total_messages(self) -> int:
        """Total communication charged, in the paper's value-messages."""
        return self.stats.total_values


def run_hierarchical(
    graph: nx.Graph,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    delta: float,
    *,
    diameter_rule: str = "exact",
    max_rounds: int | None = None,
) -> HierarchicalResult:
    """Run mutual-best-candidate hierarchical merging until quiescence."""
    require_positive(delta, "delta")
    if diameter_rule not in ("exact", "safe", "paper"):
        raise ValueError(
            f"diameter_rule must be 'exact', 'safe' or 'paper', got {diameter_rule!r}"
        )
    nodes = list(graph.nodes)
    if not nodes:
        raise ValueError("graph must have at least one node")
    if max_rounds is None:
        max_rounds = len(nodes) + 1
    stats = MessageStats()
    dim = int(np.atleast_1d(np.asarray(features[nodes[0]])).shape[0])

    # Hot-loop lookup tables: node reprs (tie-break keys), adjacency lists
    # and the edge list are all fixed for the run, so build them once
    # instead of re-deriving them every round.
    repr_of = {v: repr(v) for v in nodes}
    adj = {v: list(graph.adj[v]) for v in nodes}
    edges = list(graph.edges)
    feature_rows, index_of = _vectorized_features(nodes, features, metric)
    root_distance = _RootDistanceCache(features, metric)

    # Cluster state: root -> members; per-node root; per-cluster diameter.
    root_of: dict[Hashable, Hashable] = {v: v for v in nodes}
    members: dict[Hashable, set[Hashable]] = {v: {v} for v in nodes}
    diameter: dict[Hashable, float] = {v: 0.0 for v in nodes}

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        adjacency = _cluster_adjacency(edges, root_of, repr_of)
        if not adjacency:
            break
        # Candidate evaluation with its communication charge.
        fitness: dict[tuple[Hashable, Hashable], float] = {}
        for (ri, rj), boundary in adjacency.items():
            bi, bj = boundary
            stats.charge("feature", CATEGORY_DATA, dim + 1)
            stats.charge("feature", CATEGORY_DATA, dim + 1)
            hops_i = _tree_hops(adj, members[ri], bi, ri)
            hops_j = _tree_hops(adj, members[rj], bj, rj)
            if hops_i:
                stats.charge("feature", CATEGORY_DATA, dim + 1, hops_i)
            if hops_j:
                stats.charge("feature", CATEGORY_DATA, dim + 1, hops_j)
            d_roots = root_distance(ri, rj)
            if diameter[ri] + d_roots + diameter[rj] > delta:
                continue
            mi, mj = diameter[ri], diameter[rj]
            if mi >= mj:
                fit = max(mi, mj + d_roots)
            else:
                fit = max(mj, mi + d_roots)
            fitness[(ri, rj)] = fit

        if not fitness:
            break
        best: dict[Hashable, tuple[float, Hashable]] = {}
        for (ri, rj), fit in fitness.items():
            for a, b in ((ri, rj), (rj, ri)):
                current = best.get(a)
                if current is None or (fit, repr_of[b]) < (current[0], repr_of[current[1]]):
                    best[a] = (fit, b)

        merged_any = False
        absorbed: set[Hashable] = set()
        for ri in sorted(best, key=repr_of.__getitem__):
            if ri in absorbed:
                continue
            fit, rj = best[ri]
            if rj in absorbed or best.get(rj, (None, None))[1] != ri:
                continue
            # Mutual best pair: merge rj into ri (deterministic direction).
            ri_, rj_ = (ri, rj) if repr_of[ri] < repr_of[rj] else (rj, ri)
            d_roots = root_distance(ri_, rj_)
            if diameter_rule == "exact":
                # Leader-side data exchange: ship the absorbed cluster's
                # member features to the surviving leader.
                leader_hops = _leader_distance(adj, members, adjacency, ri_, rj_)
                stats.charge(
                    "feature", CATEGORY_DATA, dim * len(members[rj_]), leader_hops
                )
                merged_members = members[ri_] | members[rj_]
                if feature_rows is not None:
                    rows = feature_rows[[index_of[m] for m in merged_members]]
                    new_diameter = float(metric.pairwise_matrix(rows).max())
                else:
                    new_diameter = _exact_diameter(merged_members, features, metric)
            elif diameter_rule == "safe":
                new_diameter = diameter[ri_] + d_roots + diameter[rj_]
            else:
                mi, mj = diameter[ri_], diameter[rj_]
                new_diameter = max(mi, mj + d_roots) if mi >= mj else max(mj, mi + d_roots)
            stats.charge("feature", CATEGORY_DATA, 1, 2)  # commit
            stats.charge(
                "feature", CATEGORY_DATA, 1, max(len(members[rj_]), 1)
            )  # new-root broadcast over the absorbed tree
            for member in members[rj_]:
                root_of[member] = ri_
            members[ri_] |= members[rj_]
            del members[rj_]
            del diameter[rj_]
            diameter[ri_] = new_diameter
            absorbed.add(rj_)
            absorbed.add(ri)
            merged_any = True
        if not merged_any:
            break

    clustering = clustering_from_assignment(graph, root_of, features)
    return HierarchicalResult(clustering, stats, rounds)


def _vectorized_features(
    nodes: list[Hashable],
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
) -> tuple[np.ndarray | None, dict[Hashable, int] | None]:
    """(feature matrix, node -> row index) when *metric* vectorizes, else (None, None).

    Metrics whose features are not coercible vectors (e.g. ``MatrixMetric``
    node ids) or that lack :meth:`Metric.pairwise_matrix` fall back to the
    scalar :func:`_exact_diameter` path.
    """
    try:
        rows = np.asarray([as_feature(features[v]) for v in nodes], dtype=np.float64)
    except (TypeError, ValueError, KeyError):
        return None, None
    if metric.pairwise_matrix(rows[:1]) is None:
        return None, None
    return rows, {v: i for i, v in enumerate(nodes)}


class _RootDistanceCache:
    """Memoized root-feature distances (features are fixed for the run).

    Adjacent cluster pairs persist across merge rounds, so the same root
    pair is evaluated many times; the distance never changes.
    """

    def __init__(self, features: Mapping[Hashable, np.ndarray], metric: Metric):
        self._features = features
        self._metric = metric
        self._cache: dict[tuple[Hashable, Hashable], float] = {}

    def __call__(self, ri: Hashable, rj: Hashable) -> float:
        key = (ri, rj)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._metric.distance(self._features[ri], self._features[rj])
            self._cache[key] = cached
            self._cache[(rj, ri)] = cached
        return cached


def _cluster_adjacency(
    edges: list[tuple[Hashable, Hashable]],
    root_of: Mapping[Hashable, Hashable],
    repr_of: Mapping[Hashable, str],
) -> dict[tuple[Hashable, Hashable], tuple[Hashable, Hashable]]:
    """Adjacent cluster pairs -> one (deterministic) boundary edge each."""
    adjacency: dict[tuple[Hashable, Hashable], tuple[Hashable, Hashable]] = {}
    edge_rank: dict[tuple[Hashable, Hashable], tuple[str, str]] = {}
    for a, b in edges:
        ra, rb = root_of[a], root_of[b]
        if ra == rb:
            continue
        if repr_of[ra] < repr_of[rb]:
            key, edge = (ra, rb), (a, b)
        else:
            key, edge = (rb, ra), (b, a)
        rank = (repr_of[edge[0]], repr_of[edge[1]])
        if key not in adjacency or rank < edge_rank[key]:
            adjacency[key] = edge
            edge_rank[key] = rank
    return adjacency


def _exact_diameter(
    cluster_members: set[Hashable],
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
) -> float:
    """True feature diameter of a member set (computed at the leader)."""
    items = sorted(cluster_members, key=repr)
    worst = 0.0
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            d = metric.distance(features[a], features[b])
            if d > worst:
                worst = d
    return worst


def _leader_distance(
    adj: Mapping[Hashable, list[Hashable]],
    members: Mapping[Hashable, set[Hashable]],
    adjacency: Mapping[tuple[Hashable, Hashable], tuple[Hashable, Hashable]],
    ri: Hashable,
    rj: Hashable,
) -> int:
    """Leader-to-leader hops via the clusters' boundary edge."""
    key = (ri, rj) if repr(ri) < repr(rj) else (rj, ri)
    edge = adjacency.get(key)
    if edge is None:
        return 1
    b_first, b_second = edge
    first, second = key
    hops_first = _tree_hops(adj, members[first], b_first, first)
    hops_second = _tree_hops(adj, members[second], b_second, second)
    return max(hops_first + 1 + hops_second, 1)


def _tree_hops(
    adj: Mapping[Hashable, list[Hashable]],
    cluster_members: set[Hashable],
    src: Hashable,
    dst: Hashable,
) -> int:
    """Hop distance within the cluster's induced subgraph.

    Level-order BFS restricted to *cluster_members*; hop distance is
    unique, so this matches ``nx.shortest_path_length`` on the induced
    subgraph without materializing a subgraph view per query.
    """
    if src == dst:
        return 0
    seen = {src}
    frontier = [src]
    hops = 0
    while frontier:
        hops += 1
        next_frontier = []
        for u in frontier:
            for w in adj[u]:
                if w == dst:
                    return hops
                if w not in seen and w in cluster_members:
                    seen.add(w)
                    next_frontier.append(w)
        frontier = next_frontier
    raise nx.NetworkXNoPath(f"no path between {src!r} and {dst!r} within the cluster")

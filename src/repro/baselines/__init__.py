"""Clustering baselines the paper compares ELink against (§8.3)."""

from repro.baselines.centralized import (
    SpectralResult,
    SpectralSolver,
    centralized_collection_cost,
    spectral_clustering_search,
)
from repro.baselines.hierarchical import HierarchicalResult, run_hierarchical
from repro.baselines.spanning_forest import (
    SpanningForestNode,
    SpanningForestResult,
    run_spanning_forest,
)

__all__ = [
    "HierarchicalResult",
    "SpanningForestNode",
    "SpanningForestResult",
    "SpectralResult",
    "SpectralSolver",
    "centralized_collection_cost",
    "run_hierarchical",
    "run_spanning_forest",
    "spectral_clustering_search",
]

"""``python -m repro verify`` — run the correctness oracle from the shell.

Four modes:

- default: one fully-verified scenario over the shared chaos harness
  (:mod:`repro.verify.harness`) — online invariant monitors, stats
  conservation, and δ-legality of the surviving clustering; any
  violation is printed and exits 1.
- ``--replay``: the determinism differ — the scenario runs twice at the
  same seed and the two traces are compared byte-for-byte; the first
  divergent event (if any) is printed and exits 1.
- ``--replay --sharded``: the sharded-equivalence certifier — the same
  scenario runs once on the serial object engine and once on the
  multi-process sharded engine (``--shards K``), and the canonical trace
  streams, clusterings and message-stats snapshots must be bit-identical
  (coordinator-only ``shard.*`` events excluded).
- ``--serve-diff A B``: the serving-layer equivalence check — compare
  two ``repro serve --snapshot-out`` files (typically a kill-and-resume
  run against an uninterrupted one) and exit 1 with the first divergent
  state entries if their digests differ.

``--n`` is a target node count; the harness uses the nearest square grid.
Examples::

    python -m repro verify --n 49 --crash 0.1 --seed 3
    python -m repro verify --replay --n 49 --crash 0.08 --seed 11
    python -m repro verify --replay --sharded --shards 4 --topology geometric
    python -m repro verify --serve-diff resumed.json uninterrupted.json
"""

from __future__ import annotations

import argparse
import math

from repro.verify.harness import ScenarioSpec, run_scenario
from repro.verify.invariants import InvariantError
from repro.verify.replay import replay_check, replay_sharded_check
from repro.verify.serve_check import diff_snapshot_files


def _build_parser() -> argparse.ArgumentParser:
    """The ``repro verify`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Run the repro.verify correctness oracle on a chaos scenario.",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="determinism mode: run the scenario twice and diff the traces",
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="with --replay: certify the sharded engine against the serial run",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for --sharded / engine=sharded (default 2)",
    )
    parser.add_argument(
        "--topology",
        choices=("grid", "geometric"),
        default="grid",
        help="scenario topology family (default grid)",
    )
    parser.add_argument(
        "--serve-diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="compare two 'repro serve --snapshot-out' files for state equivalence",
    )
    parser.add_argument(
        "--n", type=int, default=49, help="target node count (nearest square grid; default 49)"
    )
    parser.add_argument("--seed", type=int, default=0, help="fault-plan seed (default 0)")
    parser.add_argument("--delta", type=float, default=1.0, help="clustering threshold (default 1.0)")
    parser.add_argument(
        "--crash", type=float, default=0.1, help="crash fraction in [0, 1] (default 0.1)"
    )
    parser.add_argument(
        "--churn", type=int, default=0, help="link-flap events during the run (default 0)"
    )
    parser.add_argument(
        "--engine",
        choices=("object", "array", "sharded"),
        default="object",
        help="simulation engine under test (default object)",
    )
    return parser


def _spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    """Translate parsed CLI arguments into a :class:`ScenarioSpec`."""
    side = max(2, int(round(math.sqrt(args.n))))
    return ScenarioSpec(
        side=side,
        seed=args.seed,
        delta=args.delta,
        crash_fraction=args.crash,
        churn_events=args.churn,
        engine=args.engine,
        shards=args.shards,
        topology=args.topology,
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 clean, 1 violation)."""
    args = _build_parser().parse_args(argv)
    if args.serve_diff is not None:
        try:
            diff = diff_snapshot_files(args.serve_diff[0], args.serve_diff[1])
        except (OSError, ValueError) as error:
            print(f"verify --serve-diff FAILED to load snapshots: {error}")
            return 1
        print(f"verify --serve-diff {args.serve_diff[0]} {args.serve_diff[1]}")
        print(f"  {diff}")
        return 0 if diff.equivalent else 1
    spec = _spec_from_args(args)
    label = (
        f"{spec.side * spec.side} nodes, {spec.topology}, delta={spec.delta:g}, "
        f"crash={spec.crash_fraction:g}, churn={spec.churn_events}, "
        f"seed={spec.seed}, engine={spec.engine}"
    )
    if args.replay and args.sharded:
        report = replay_sharded_check(spec)
        print(f"verify --replay --sharded [{label}, shards={spec.shards}]")
        print(f"  {report}")
        return 0 if report.identical else 1
    if args.replay:
        report = replay_check(spec)
        print(f"verify --replay [{label}]")
        print(f"  {report}")
        return 0 if report.identical else 1
    print(f"verify [{label}]")
    try:
        result = run_scenario(spec, level="full")
    except InvariantError as error:
        print(f"  FAILED: {error}")
        return 1
    print(
        f"  OK: {result.num_clusters} clusters, "
        f"{result.total_messages} messages, no invariant violations"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

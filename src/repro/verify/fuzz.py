"""Property-based fuzzing: random chaos scenarios through the full oracle.

Hypothesis generates :class:`~repro.verify.harness.ScenarioSpec` values —
random grid sizes, δ thresholds, crash fractions, churn, and fault-plan
seeds — and every generated scenario is executed at verification level
``full``: online invariant monitors armed, stats conservation checked,
and the surviving clustering validated as a legal δ-clustering.  A
failing example *is* a reproducer: the spec is frozen and
seed-deterministic, so pasting it into :func:`check_scenario` (or the
``python -m repro verify`` CLI with the same parameters) replays the bug
exactly.

Hypothesis is imported lazily so this module (and the ``repro.verify``
package) imports cleanly where the library is absent; the test suite
skips the fuzz cases in that situation.  CI runs them with
``derandomize=True`` so the sweep is a fixed, reproducible corpus rather
than a flaky random walk.
"""

from __future__ import annotations

from repro.verify.harness import ScenarioSpec, run_scenario


def hypothesis_available() -> bool:
    """True when the ``hypothesis`` library can be imported."""
    try:
        import hypothesis  # noqa: F401
    except ImportError:
        return False
    return True


def scenario_specs():
    """A Hypothesis strategy over small chaos :class:`ScenarioSpec` values.

    Sizes are kept small (16–49 nodes) so each example is a sub-second
    simulation; the interesting state space is fault interleavings, which
    the seed and crash/churn parameters sweep, not raw node count.
    """
    import hypothesis.strategies as st

    return st.builds(
        ScenarioSpec,
        side=st.integers(min_value=4, max_value=7),
        seed=st.integers(min_value=0, max_value=2**16),
        delta=st.sampled_from([0.5, 1.0, 2.0]),
        crash_fraction=st.sampled_from([0.0, 0.05, 0.1, 0.2]),
        churn_events=st.integers(min_value=0, max_value=4),
    )


def check_scenario(spec: ScenarioSpec):
    """Run *spec* fully verified and sanity-check the result shape.

    Raises :class:`~repro.verify.invariants.InvariantError` (from inside
    ``run_elink``) on any invariant violation, or :class:`AssertionError`
    on a malformed result.  Returns the :class:`ELinkResult` so callers
    can assert further properties.
    """
    result = run_scenario(spec, level="full")
    assert result.num_clusters >= 1, "a non-empty survivor set must form clusters"
    assert result.stats.total_values >= 0
    assert result.completion_time >= 0.0
    return result

"""Runtime protocol-invariant monitors over the trace event stream.

Each :class:`InvariantMonitor` subscribes (via :class:`MonitorSuite`) to a
:class:`~repro.obs.trace.Tracer` and checks one protocol invariant
*online*, as events are emitted — not post-hoc from the ring buffer,
whose oldest events may already have been evicted on long runs.  The
catalog (see docs/ARCHITECTURE.md, "Verification"):

==========================  ================================================
invariant                   statement
==========================  ================================================
``monotone-time``           event timestamps never decrease (the kernel
                            clock is monotone)
``timer-ownership``         no timer fires for a dead owner, and no dead
                            node sets a timer — a crash blanket-cancels
                            everything the node owned
``ack-conservation``        every explicit-phase ``ack2`` matches an
                            outstanding ``ack1`` at its receiver (the
                            per-node episode child counters never
                            underflow)
``repair-causality``        a repair is never reported before the crash it
                            repairs
``stats-conservation``      :class:`~repro.sim.stats.MessageStats` running
                            totals equal the sums of the per-kind and
                            per-category counters (checked at run
                            boundaries via :func:`check_stats_conservation`
                            — it is a counter identity, not a trace
                            property)
``delta-legality``          the assembled clustering is a valid
                            δ-clustering of the (surviving) graph, via
                            :func:`repro.core.delta.validate_clustering`
==========================  ================================================

Monitors are *sound under degradation*: the failure-detection layer
silently prunes/force-completes episode counters it can no longer trust,
which the monitors track as an over-approximation — they may miss a
violation in a heavily degraded run, but they never report a false one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.obs.trace import TraceEvent, Tracer
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation of a protocol invariant."""

    invariant: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] t={self.time:g}: {self.detail}"


class InvariantError(AssertionError):
    """Raised when a verified run observed one or more invariant violations."""

    def __init__(self, violations: list[InvariantViolation]):
        self.violations = list(violations)
        lines = "\n".join(f"  {v}" for v in self.violations[:20])
        more = len(self.violations) - 20
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n{lines}{suffix}"
        )


class InvariantMonitor:
    """Base class: observes trace events, accumulates violations."""

    #: Invariant name used in violation records.
    name = "invariant"

    def __init__(self) -> None:
        self.violations: list[InvariantViolation] = []

    def observe(self, event: TraceEvent) -> None:
        """Check one event (override)."""

    def finish(self) -> list[InvariantViolation]:
        """End-of-run checks (override if needed); returns the violations."""
        return self.violations

    def _violate(self, time: float, detail: str) -> None:
        self.violations.append(InvariantViolation(self.name, time, detail))


class MonotoneTimeMonitor(InvariantMonitor):
    """Event timestamps must never decrease (kernel-clock monotonicity)."""

    name = "monotone-time"

    def __init__(self) -> None:
        super().__init__()
        self._last = float("-inf")

    def observe(self, event: TraceEvent) -> None:
        """Flag any event stamped earlier than its predecessor."""
        if event.time < self._last:
            self._violate(
                event.time,
                f"{event.type} at t={event.time:g} after an event at t={self._last:g}",
            )
        self._last = max(self._last, event.time)


class TimerOwnershipMonitor(InvariantMonitor):
    """No timer fires for a dead owner; no dead node sets a timer.

    Crash cleanup (``Network.remove_node``) blanket-cancels every pending
    timer the node owns, so an owned ``timer.fire`` attributed to a dead
    node means cancellation was bypassed.  Fires with no owner attribution
    (fire-and-forget deliveries, injector events) are exempt.
    """

    name = "timer-ownership"

    def __init__(self) -> None:
        super().__init__()
        self._dead: set[Hashable] = set()

    def observe(self, event: TraceEvent) -> None:
        """Track crash/recover state; flag dead-owner timer activity."""
        if event.type == "node.crash":
            self._dead.add(event.node)
        elif event.type == "node.recover":
            self._dead.discard(event.node)
        elif event.type == "timer.fire":
            if event.node is not None and event.node in self._dead:
                self._violate(
                    event.time,
                    f"timer {event.data.get('callback')!r} fired for dead owner "
                    f"{event.node!r}",
                )
        elif event.type == "timer.set":
            if event.node in self._dead:
                self._violate(
                    event.time,
                    f"dead node {event.node!r} set timer "
                    f"{event.data.get('callback')!r}",
                )


class AckConservationMonitor(InvariantMonitor):
    """Every delivered ``ack2`` must match an outstanding ``ack1``.

    Mirrors the per-node episode accounting in aggregate: an ``ack1``
    delivery opens one outstanding child completion at its receiver, an
    ``ack2`` delivery closes one.  Going negative means a child completed
    a subtree nobody was waiting on — exactly the underflow
    ``ELinkNode.handle_ack2`` raises on in fault-free runs.  Under failure
    detection the node side may *forgive* children (prune/force-complete)
    without a trace event, so the monitor's count is an upper bound on the
    node's: it can miss forgiven underflows but never reports a false one.
    """

    name = "ack-conservation"

    def __init__(self) -> None:
        super().__init__()
        self._outstanding: dict[Hashable, int] = {}

    def observe(self, event: TraceEvent) -> None:
        """Track ack1/ack2 deliveries; flag an ack2 with nothing pending."""
        if event.type != "msg.deliver":
            return
        kind = event.data.get("kind")
        if kind == "ack1":
            node = event.node
            self._outstanding[node] = self._outstanding.get(node, 0) + 1
        elif kind == "ack2":
            node = event.node
            pending = self._outstanding.get(node, 0)
            if pending <= 0:
                self._violate(
                    event.time,
                    f"ack2 delivered to {node!r} with no outstanding ack1",
                )
            else:
                self._outstanding[node] = pending - 1


class RepairCausalityMonitor(InvariantMonitor):
    """A repair for a crashed node is never reported before its crash.

    ``repair.note`` events may legitimately reference a non-crashed target
    (e.g. a child pruned because the link to it went down), so only notes
    whose target *did* crash are causally checked.
    """

    name = "repair-causality"

    def __init__(self) -> None:
        super().__init__()
        self._crash_time: dict[Hashable, float] = {}

    def observe(self, event: TraceEvent) -> None:
        """Record crash times; flag repair notes that precede them."""
        if event.type == "node.crash":
            self._crash_time.setdefault(event.node, event.time)
        elif event.type == "repair.note":
            dead = event.data.get("dead")
            crashed_at = self._crash_time.get(dead)
            if crashed_at is not None and event.time < crashed_at:
                self._violate(
                    event.time,
                    f"repair of {dead!r} reported at t={event.time:g} before "
                    f"its crash at t={crashed_at:g}",
                )


def default_monitors() -> list[InvariantMonitor]:
    """The standard monitor set checked by a fully verified run."""
    return [
        MonotoneTimeMonitor(),
        TimerOwnershipMonitor(),
        AckConservationMonitor(),
        RepairCausalityMonitor(),
    ]


class MonitorSuite:
    """Fans trace events out to a set of invariant monitors.

    Online use::

        suite = MonitorSuite()
        suite.attach(tracer)          # before the run
        ...                           # run the protocol
        violations = suite.finish()   # after (also detaches)

    Offline use (recorded JSONL traces)::

        suite = MonitorSuite()
        suite.feed(Tracer.load_jsonl(path))
        violations = suite.finish()
    """

    def __init__(self, monitors: Iterable[InvariantMonitor] | None = None):
        self.monitors = list(monitors) if monitors is not None else default_monitors()
        self._tracer: Tracer | None = None
        self.events_observed = 0

    def observe(self, event: TraceEvent) -> None:
        """Feed one event to every monitor."""
        self.events_observed += 1
        for monitor in self.monitors:
            monitor.observe(event)

    def feed(self, events: Iterable[TraceEvent]) -> None:
        """Feed a recorded event stream (offline checking)."""
        for event in events:
            self.observe(event)

    def attach(self, tracer: Tracer) -> None:
        """Subscribe to *tracer* so every future emit is checked online."""
        if self._tracer is not None:
            raise RuntimeError("MonitorSuite is already attached to a tracer")
        self._tracer = tracer
        tracer.subscribe(self.observe)

    def detach(self) -> None:
        """Unsubscribe from the tracer attached by :meth:`attach`."""
        if self._tracer is not None:
            self._tracer.unsubscribe(self.observe)
            self._tracer = None

    @property
    def violations(self) -> list[InvariantViolation]:
        """All violations accumulated so far, in monitor order."""
        return [v for monitor in self.monitors for v in monitor.violations]

    def finish(self) -> list[InvariantViolation]:
        """Run end-of-stream checks, detach, and return all violations."""
        self.detach()
        out: list[InvariantViolation] = []
        for monitor in self.monitors:
            out.extend(monitor.finish())
        return out

    def __repr__(self) -> str:
        return (
            f"MonitorSuite(monitors={len(self.monitors)}, "
            f"events={self.events_observed}, violations={len(self.violations)})"
        )


def check_stats_conservation(
    stats: MessageStats, *, time: float = 0.0
) -> list[InvariantViolation]:
    """Check the :class:`MessageStats` counter identities.

    The running totals (``total_packets`` / ``total_values``) are O(1)
    caches maintained alongside the per-kind counters; this verifies they
    equal the sums of both the per-kind and per-category breakdowns, and
    that the two drop breakdowns agree — the accounting invariant every
    experiment table rests on.
    """
    violations: list[InvariantViolation] = []

    def check(label: str, cached: int, recomputed: int) -> None:
        if cached != recomputed:
            violations.append(
                InvariantViolation(
                    "stats-conservation",
                    time,
                    f"{label}: running total {cached} != counter sum {recomputed}",
                )
            )

    check("total_packets vs by_kind", stats.total_packets, sum(stats.packets_by_kind.values()))
    check(
        "total_packets vs by_category",
        stats.total_packets,
        sum(stats.packets_by_category.values()),
    )
    check("total_values vs by_kind", stats.total_values, sum(stats.values_by_kind.values()))
    check(
        "total_values vs by_category",
        stats.total_values,
        sum(stats.values_by_category.values()),
    )
    check("drops by_kind vs by_reason", sum(stats.drops_by_kind.values()), stats.total_drops)
    return violations

"""Determinism differ: run a scenario twice, structurally diff the traces.

The repo's determinism contract (docs/ARCHITECTURE.md) says a fixed seed
fixes everything: the kernel breaks timestamp ties FIFO, fault plans are
pure functions of their seed, and no code path may iterate an unordered
``set``/``dict`` where order reaches the schedule.  This module turns the
contract into a check: :func:`replay_check` executes the same
:class:`~repro.verify.harness.ScenarioSpec` twice from scratch and
compares the full trace event streams *byte for byte* (via each event's
canonical JSONL form).  Any nondeterminism that touches behaviour —
unordered iteration, id()-keyed containers, RNG shared across runs —
shows up as a first divergence with both sides printed.

This is cheaper and stricter than comparing experiment tables: tables
aggregate, traces expose the first divergent event with its timestamp and
payload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.obs.trace import TraceEvent, Tracer
from repro.verify.harness import ScenarioSpec, run_scenario


@dataclass(frozen=True)
class TraceDivergence:
    """The first point where two replayed traces disagree.

    ``first`` / ``second`` are the canonical JSONL forms of the divergent
    events; ``None`` means that stream ended early.
    """

    index: int
    first: str | None
    second: str | None

    def __str__(self) -> str:
        return (
            f"traces diverge at event #{self.index}:\n"
            f"  run 1: {self.first or '<end of trace>'}\n"
            f"  run 2: {self.second or '<end of trace>'}"
        )


def diff_traces(
    first: Iterable[TraceEvent], second: Iterable[TraceEvent]
) -> TraceDivergence | None:
    """Return the first divergence between two event streams, or None.

    Events are compared through :meth:`TraceEvent.to_json`, the same
    canonical form the JSONL exporter writes — so "no divergence" means
    the exported trace files would be byte-identical.
    """
    iter_first = iter(first)
    iter_second = iter(second)
    index = 0
    while True:
        event_a = next(iter_first, None)
        event_b = next(iter_second, None)
        if event_a is None and event_b is None:
            return None
        line_a = event_a.to_json() if event_a is not None else None
        line_b = event_b.to_json() if event_b is not None else None
        if line_a != line_b:
            return TraceDivergence(index, line_a, line_b)
        index += 1


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one replay determinism check."""

    spec: ScenarioSpec
    events: int
    evicted: int
    divergence: TraceDivergence | None

    @property
    def identical(self) -> bool:
        """True when the two runs produced byte-identical traces."""
        return self.divergence is None

    def __str__(self) -> str:
        if self.identical:
            window = "" if not self.evicted else f" (ring evicted {self.evicted}; diffed the retained suffix)"
            return f"replay OK: {self.events} events byte-identical across two runs{window}"
        return str(self.divergence)


def replay_check(spec: ScenarioSpec, *, level: str = "off") -> ReplayReport:
    """Run *spec* twice at fixed seed and diff the resulting traces.

    ``level`` is the verification level applied to both runs ("off" keeps
    the check focused on determinism; "full" also arms the invariant
    monitors, which never mutate state and so cannot mask a divergence).
    """
    tracer_a = Tracer()
    run_scenario(spec, level=level, tracer=tracer_a)
    tracer_b = Tracer()
    run_scenario(spec, level=level, tracer=tracer_b)
    divergence = diff_traces(tracer_a.events(), tracer_b.events())
    if divergence is None and tracer_a.emitted != tracer_b.emitted:
        # Identical retained windows but different lifetime counts can only
        # happen when the ring evicted differently-sized prefixes.
        divergence = TraceDivergence(
            0,
            f"<{tracer_a.emitted} events emitted>",
            f"<{tracer_b.emitted} events emitted>",
        )
    return ReplayReport(
        spec=spec,
        events=len(tracer_a),
        evicted=tracer_a.evicted,
        divergence=divergence,
    )


def _canonical_clustering(result) -> tuple:
    """A clustering's comparable canonical form (order-independent)."""
    clustering = result.clustering
    return (
        tuple(sorted(clustering.assignment.items())),
        tuple(sorted(clustering.parent.items())),
        tuple(sorted((root, tuple(feature.tolist()))
                     for root, feature in clustering.root_features.items())),
    )


@dataclass(frozen=True)
class ShardedReplayReport:
    """Outcome of one serial-vs-sharded equivalence check.

    ``divergence`` is the first trace mismatch (``shard.*``
    coordinator-only events excluded from the sharded stream);
    ``mismatches`` lists any result-level disagreements (clustering,
    stats, counters) by name.
    """

    spec: ScenarioSpec
    shards: int
    events: int
    divergence: TraceDivergence | None
    mismatches: tuple[str, ...]

    @property
    def identical(self) -> bool:
        """True when the sharded run is bit-identical to the serial run."""
        return self.divergence is None and not self.mismatches

    def __str__(self) -> str:
        if self.identical:
            return (
                f"sharded replay OK: {self.shards}-shard run byte-identical to "
                f"serial ({self.events} events; clustering and stats match)"
            )
        if self.divergence is not None:
            return f"sharded replay FAILED ({self.shards} shards): {self.divergence}"
        return (
            f"sharded replay FAILED ({self.shards} shards): result mismatch in "
            + ", ".join(self.mismatches)
        )


def replay_sharded_check(spec: ScenarioSpec, *, level: str = "off") -> ShardedReplayReport:
    """Certify the sharded engine against the serial baseline.

    Runs *spec* once on the object engine and once on the sharded engine
    (``spec.shards`` shards, same topology/seed/fault plan), then demands
    byte-identical canonical trace streams — after dropping the
    coordinator-only ``shard.*`` events, which have no serial counterpart
    — plus identical clusterings and :class:`MessageStats` snapshots.
    """
    serial_tracer = Tracer()
    serial = run_scenario(
        replace(spec, engine="object"), level=level, tracer=serial_tracer
    )
    sharded_tracer = Tracer()
    sharded = run_scenario(
        replace(spec, engine="sharded"), level=level, tracer=sharded_tracer
    )
    filtered = [
        event for event in sharded_tracer.events()
        if not event.type.startswith("shard.")
    ]
    divergence = diff_traces(serial_tracer.events(), filtered)
    mismatches = []
    if _canonical_clustering(serial) != _canonical_clustering(sharded):
        mismatches.append("clustering")
    if serial.stats.snapshot() != sharded.stats.snapshot():
        mismatches.append("stats")
    for field in ("completion_time", "protocol_time", "total_switches",
                  "repaired_components"):
        if getattr(serial, field) != getattr(sharded, field):
            mismatches.append(field)
    return ShardedReplayReport(
        spec=spec,
        shards=spec.shards,
        events=len(serial_tracer),
        divergence=divergence,
        mismatches=tuple(mismatches),
    )

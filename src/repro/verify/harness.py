"""Deterministic chaos-scenario harness behind the verification tooling.

One scenario shape, three consumers: the ``python -m repro verify`` CLI
runs a single verified scenario, the replay differ
(:mod:`repro.verify.replay`) runs the same scenario twice and diffs the
traces, and the fuzz suite (:mod:`repro.verify.fuzz`) sweeps randomized
:class:`ScenarioSpec` instances.  The shape mirrors the chaos ablation
experiment — a grid topology with a smooth scalar field, explicit
signalling with failure detection, and a seed-deterministic
:class:`~repro.sim.faults.FaultPlan` whose crash window overlaps cluster
formation — because that is the hardest regime the protocol supports: the
repair machinery is live and episodes lose participants mid-flight.

Everything here is a pure function of the spec, so a spec plus a seed is
a complete, replayable bug report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ELinkConfig, run_elink
from repro.core.elink import ELinkResult, compute_kappa
from repro.features.metrics import EuclideanMetric
from repro.geometry.quadtree import QuadTreeDecomposition
from repro.geometry.topology import Topology, grid_topology, random_geometric_topology
from repro.obs.trace import Tracer
from repro.sim import FaultInjector, FaultPlan, Network
from repro.verify.runtime import verification


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, seed-deterministic chaos scenario description."""

    #: Grid side length (the topology has ``side * side`` nodes).
    side: int = 7
    #: Seed for the fault plan (the topology and features are seed-free).
    seed: int = 0
    #: δ-clustering threshold.
    delta: float = 1.0
    #: Fraction of unprotected nodes crashed mid-run.
    crash_fraction: float = 0.1
    #: Link-flap events drawn from the grid's edges.
    churn_events: int = 0
    #: ELink signalling mode; explicit exercises the episode machinery.
    signalling: str = "explicit"
    #: Simulation engine ("object" | "array" | "sharded"); None follows
    #: REPRO_ENGINE.  Cross-engine byte-identity is checked by diffing
    #: traces from two specs differing only in this field.
    engine: str | None = None
    #: Shard count for the sharded engine (ignored by the others).
    shards: int = 2
    #: Shard transport ("inline" | "fork"); None picks the platform default.
    shard_mode: str | None = None
    #: Topology family: "grid" (the default chaos shape) or "geometric"
    #: (uniform-random placement with radio-range links, paper §8.1).
    topology: str = "grid"

    def __post_init__(self) -> None:
        if self.side < 2:
            raise ValueError(f"side must be >= 2, got {self.side}")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1], got {self.crash_fraction}")
        if self.engine not in (None, "object", "array", "sharded"):
            raise ValueError(
                f"engine must be 'object', 'array' or 'sharded', got {self.engine!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_mode not in (None, "inline", "fork"):
            raise ValueError(
                f"shard_mode must be 'inline' or 'fork', got {self.shard_mode!r}"
            )
        if self.topology not in ("grid", "geometric"):
            raise ValueError(
                f"topology must be 'grid' or 'geometric', got {self.topology!r}"
            )


def build_scenario(
    spec: ScenarioSpec,
) -> tuple[Topology, dict, EuclideanMetric, ELinkConfig, QuadTreeDecomposition, Network, FaultInjector]:
    """Materialize *spec* into fresh run components.

    Each call builds an independent graph copy (the injector mutates it in
    place), so calling twice with the same spec yields two byte-identical
    runs — the property the replay differ checks.
    """
    if spec.topology == "geometric":
        base = random_geometric_topology(spec.side * spec.side, seed=spec.seed)
    else:
        base = grid_topology(spec.side, spec.side)
    graph = base.graph.copy()
    topology = Topology(graph, dict(base.positions))
    features = {
        node: np.array([(x + y) / 10.0]) for node, (x, y) in topology.positions.items()
    }
    config = ELinkConfig(
        delta=spec.delta, signalling=spec.signalling, failure_detection=True
    )
    quadtree = QuadTreeDecomposition(topology)
    kappa = compute_kappa(topology.num_nodes, config.gamma)
    if spec.engine == "sharded":
        network = Network(
            graph,
            engine="sharded",
            shards=spec.shards,
            quadtree=quadtree,
            shard_mode=spec.shard_mode,
        )
    else:
        network = Network(graph, engine=spec.engine)
    # The quadtree root is protected: it anchors the explicit round cascade
    # and result collection, same as the runner's --crash path.
    plan = FaultPlan.random(
        sorted(graph.nodes),
        seed=spec.seed,
        crash_fraction=spec.crash_fraction,
        crash_window=(0.05 * kappa, 0.75 * kappa),
        churn_edges=sorted(graph.edges),
        churn_events=spec.churn_events,
        churn_window=(0.05 * kappa, 0.75 * kappa),
        churn_downtime=2.0,
        protected=(quadtree.root,),
    )
    injector = FaultInjector(network, plan)
    return topology, features, EuclideanMetric(), config, quadtree, network, injector


def run_scenario(
    spec: ScenarioSpec, *, level: str = "full", tracer: Tracer | None = None
) -> ELinkResult:
    """Run *spec* at verification *level*; raises on any violation.

    Pass a :class:`Tracer` to capture the run's event stream (the replay
    differ does, to export and diff JSONL traces).
    """
    topology, features, metric, config, quadtree, network, injector = build_scenario(spec)
    with verification(level):
        return run_elink(
            topology,
            features,
            metric,
            config,
            quadtree=quadtree,
            network=network,
            injector=injector,
            tracer=tracer,
        )

"""repro.verify — the correctness oracle for the ELink reproduction.

Three pillars, built on the PR 3 observability layer:

1. **Runtime invariant monitors** (:mod:`repro.verify.invariants`) —
   online checkers subscribed to the trace stream: clock monotonicity,
   timer ownership across crashes, ack conservation in the explicit
   phase, repair/crash causality, message-stats counter conservation,
   and δ-legality of the assembled clustering.
2. **Determinism replay differ** (:mod:`repro.verify.replay`) — run a
   seed-fixed chaos scenario twice and byte-diff the traces; exposed as
   ``python -m repro verify --replay``.  The same differ certifies the
   multi-process sharded engine against the serial baseline
   (``--replay --sharded``).
3. **Property-based fuzzing** (:mod:`repro.verify.fuzz`) — Hypothesis
   sweeps of random topologies, δ values, and fault plans, each executed
   fully verified.

``run_elink`` consults :func:`repro.verify.runtime.runtime_verifier` on
every run: with the ``REPRO_VERIFY`` environment variable unset (or
``off``) it returns None and the run is byte-identical to an unverified
build; ``cheap`` adds end-of-run accounting and clustering checks;
``full`` also arms the online monitors.
"""

from repro.verify.harness import ScenarioSpec, build_scenario, run_scenario
from repro.verify.invariants import (
    AckConservationMonitor,
    InvariantError,
    InvariantMonitor,
    InvariantViolation,
    MonitorSuite,
    MonotoneTimeMonitor,
    RepairCausalityMonitor,
    TimerOwnershipMonitor,
    check_stats_conservation,
    default_monitors,
)
from repro.verify.replay import (
    ReplayReport,
    ShardedReplayReport,
    TraceDivergence,
    diff_traces,
    replay_check,
    replay_sharded_check,
)
from repro.verify.serve_check import SnapshotDiff, diff_snapshot_files, diff_snapshots
from repro.verify.runtime import (
    LEVELS,
    VERIFY_ENV,
    RunVerifier,
    runtime_verifier,
    set_verification_level,
    verification,
    verification_level,
)

__all__ = [
    "AckConservationMonitor",
    "InvariantError",
    "InvariantMonitor",
    "InvariantViolation",
    "LEVELS",
    "MonitorSuite",
    "MonotoneTimeMonitor",
    "RepairCausalityMonitor",
    "ReplayReport",
    "RunVerifier",
    "ScenarioSpec",
    "ShardedReplayReport",
    "SnapshotDiff",
    "TimerOwnershipMonitor",
    "TraceDivergence",
    "VERIFY_ENV",
    "build_scenario",
    "check_stats_conservation",
    "default_monitors",
    "diff_snapshot_files",
    "diff_snapshots",
    "diff_traces",
    "replay_check",
    "replay_sharded_check",
    "run_scenario",
    "runtime_verifier",
    "set_verification_level",
    "verification",
    "verification_level",
]

"""Run-level verification policy: levels, env plumbing, and the run hook.

``run_elink`` calls :func:`runtime_verifier` once per run.  What it gets
back depends on the ambient verification level, read from the
``REPRO_VERIFY`` environment variable (an env var — not a module global —
so the level survives into ``ProcessPoolExecutor`` workers spawned by the
parallel experiment runner):

===========  ==============================================================
level        meaning
===========  ==============================================================
``off``      default; :func:`runtime_verifier` returns None and the run is
             byte-identical to an unverified build
``cheap``    end-of-run checks only: :class:`MessageStats` counter
             conservation and δ-legality of the assembled clustering.  No
             tracer is forced, so traffic stays untraced and the fast
             delivery paths are untouched.
``full``     everything in ``cheap`` plus the online invariant monitors
             (:mod:`repro.verify.invariants`) fed from a tracer — the
             run's own if one is attached, otherwise a private one the
             verifier installs for the duration.
===========  ==============================================================

Violations raise :class:`~repro.verify.invariants.InvariantError` from
inside ``run_elink`` — a verified experiment fails loudly rather than
producing a quietly-wrong table.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Hashable, Iterator, Mapping

from repro.verify.invariants import (
    InvariantError,
    InvariantViolation,
    MonitorSuite,
    check_stats_conservation,
)

if TYPE_CHECKING:  # imports for annotations only; keeps runtime deps thin
    import networkx as nx
    import numpy as np

    from repro.core.delta import Clustering
    from repro.features import Metric
    from repro.sim.network import Network

#: Environment variable carrying the ambient verification level.
VERIFY_ENV = "REPRO_VERIFY"

#: Recognised verification levels, weakest first.
LEVELS = ("off", "cheap", "full")


def verification_level() -> str:
    """The ambient verification level (``off`` when unset or unknown).

    An unknown value degrades to ``off`` rather than raising: the env var
    may leak from an unrelated tool's namespace, and verification must
    never change an unverified run's behaviour.
    """
    level = os.environ.get(VERIFY_ENV, "off").strip().lower()
    return level if level in LEVELS else "off"


def set_verification_level(level: str) -> None:
    """Set the ambient level for this process *and* its future children.

    Writing the environment (rather than a module global) is what makes
    ``runner --jobs N --verify`` work: spawned workers re-import this
    module and read the inherited variable.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown verification level {level!r}; expected one of {LEVELS}")
    os.environ[VERIFY_ENV] = level


class RunVerifier:
    """Per-run verification state driven by two hooks inside ``run_elink``.

    Lifecycle::

        verifier = runtime_verifier()          # None when level is "off"
        if verifier is not None:
            verifier.attach(network)           # before nodes register
        ... run the protocol ...
        if verifier is not None:
            verifier.finish(network=..., graph=..., clustering=..., ...)

    :meth:`finish` raises :class:`InvariantError` when any check failed.
    """

    def __init__(self, level: str):
        self.level = level
        self.suite: MonitorSuite | None = None
        self._installed_tracer = False

    def attach(self, network: "Network") -> None:
        """Arm online monitoring on *network* (full level only).

        At ``full`` level the monitors need an event stream; if the run
        was not already traced, a private tracer is installed (and marked
        for removal in :meth:`finish`) so verification does not change
        what the caller sees on ``network.tracer`` afterwards.
        """
        if self.level != "full":
            return
        tracer = network.tracer
        if tracer is None:
            from repro.obs.trace import Tracer

            # Capacity 1 keeps the private ring tiny: monitors consume
            # events via subscription, not from the buffer.
            tracer = Tracer(capacity=1)
            network.tracer = tracer
            self._installed_tracer = True
        self.suite = MonitorSuite()
        self.suite.attach(tracer)

    def finish(
        self,
        *,
        network: "Network",
        graph: "nx.Graph",
        clustering: "Clustering",
        features: Mapping[Hashable, "np.ndarray"],
        metric: "Metric",
        delta: float,
    ) -> None:
        """Run end-of-run checks; raises :class:`InvariantError` on failure.

        *graph* and *features* must describe the population the clustering
        was assembled over (the surviving subgraph after faults, the full
        topology otherwise).
        """
        violations: list[InvariantViolation] = []
        if self.suite is not None:
            violations.extend(self.suite.finish())
            if self._installed_tracer:
                network.tracer = None
        violations.extend(
            check_stats_conservation(network.stats, time=network.kernel.now)
        )
        from repro.core.delta import validate_clustering

        now = network.kernel.now
        for clustering_violation in validate_clustering(
            graph, clustering, features, metric, delta
        ):
            violations.append(
                InvariantViolation(
                    "delta-legality",
                    now,
                    f"{clustering_violation.kind}: {clustering_violation.detail}",
                )
            )
        if violations:
            raise InvariantError(violations)


@contextmanager
def verification(level: str) -> Iterator[None]:
    """Context manager: force a verification level, restoring on exit.

    Used by the harness/CLI/fuzz paths so they verify regardless of the
    caller's environment, without leaking the level into later runs.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown verification level {level!r}; expected one of {LEVELS}")
    previous = os.environ.get(VERIFY_ENV)
    os.environ[VERIFY_ENV] = level
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(VERIFY_ENV, None)
        else:
            os.environ[VERIFY_ENV] = previous


def runtime_verifier() -> RunVerifier | None:
    """Factory ``run_elink`` consults: a verifier, or None when ``off``."""
    level = verification_level()
    if level == "off":
        return None
    return RunVerifier(level)

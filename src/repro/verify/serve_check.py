"""Kill-and-resume equivalence certification for the serving layer.

The live service (:mod:`repro.serve`) writes a canonical digest snapshot
of its end state (per-node RLS coefficients, applied positions, cluster
assignment, root features, maintenance message totals).  On a
deterministic replay source, a run that was SIGKILLed and resumed from a
checkpoint must reach **exactly** the snapshot an uninterrupted run
reaches — the checkpoint/restore path provably loses and invents
nothing.

:func:`diff_snapshots` compares two snapshot files and reports the first
divergences in human terms; ``repro verify --serve-diff A B`` exposes it
from the shell (CI runs it after its kill/resume exercise).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass
class SnapshotDiff:
    """Outcome of comparing two serve snapshots."""

    equivalent: bool
    digest_a: str
    digest_b: str
    #: Human-readable divergences, most significant first (empty when
    #: equivalent; capped — a digest mismatch guarantees at least one).
    divergences: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        if self.equivalent:
            return f"equivalent (digest {self.digest_a[:16]})"
        lines = [f"NOT equivalent: {self.digest_a[:16]} != {self.digest_b[:16]}"]
        lines.extend(f"  - {d}" for d in self.divergences)
        return "\n".join(lines)


def _dict_divergences(name: str, a: dict, b: dict, limit: int) -> list[str]:
    out: list[str] = []
    for key in sorted(set(a) | set(b), key=str):
        if len(out) >= limit:
            out.append(f"{name}: ... (more divergences truncated)")
            break
        if key not in a:
            out.append(f"{name}[{key}]: only in B ({b[key]!r})")
        elif key not in b:
            out.append(f"{name}[{key}]: only in A ({a[key]!r})")
        elif a[key] != b[key]:
            out.append(f"{name}[{key}]: {a[key]!r} != {b[key]!r}")
    return out


def diff_snapshots(a: dict[str, Any], b: dict[str, Any], *, limit: int = 8) -> SnapshotDiff:
    """Compare two serve snapshots; divergences are reported per section.

    The digest alone decides equivalence (it is the SHA-256 of the
    canonical state); the section-by-section walk exists to tell a human
    *where* two runs diverged — which node's coefficients, which
    assignment entry — rather than just that they did.
    """
    digest_a = str(a.get("digest", ""))
    digest_b = str(b.get("digest", ""))
    if digest_a and digest_a == digest_b:
        return SnapshotDiff(True, digest_a, digest_b)
    divergences: list[str] = []
    state_a = a.get("state", {})
    state_b = b.get("state", {})
    for scalar in ("applied_total", "applied_seq", "maintenance_values"):
        if state_a.get(scalar) != state_b.get(scalar):
            divergences.append(
                f"{scalar}: {state_a.get(scalar)!r} != {state_b.get(scalar)!r}"
            )
    for section in ("last_seq", "coefficients", "assignment", "root_features"):
        remaining = limit - len(divergences)
        if remaining <= 0:
            break
        divergences.extend(
            _dict_divergences(
                section, state_a.get(section, {}), state_b.get(section, {}), remaining
            )
        )
    if not divergences:
        divergences.append("digests differ but states compare equal (schema mismatch?)")
    return SnapshotDiff(False, digest_a, digest_b, divergences)


def diff_snapshot_files(path_a: str | Path, path_b: str | Path, *, limit: int = 8) -> SnapshotDiff:
    """Load two snapshot JSON files and :func:`diff_snapshots` them."""
    with open(path_a, "r", encoding="utf-8") as handle:
        a = json.load(handle)
    with open(path_b, "r", encoding="utf-8") as handle:
        b = json.load(handle)
    return diff_snapshots(a, b, limit=limit)

"""Discrete-event simulation kernel.

A minimal, deterministic event-heap scheduler in the spirit of SimPy's core
(SimPy itself is not available offline).  Everything in the sensor-network
substrate — message delivery, protocol timers, the implicit-signalling
schedule of ELink — runs as callbacks on one :class:`EventKernel`.

Determinism: events firing at the same timestamp run in scheduling order
(FIFO), enforced by a monotonically increasing sequence number used as the
heap tie-breaker.  This makes every protocol run reproducible.

Two scheduling entry points share the heap (and the sequence counter, so
FIFO ordering holds across both):

- :meth:`EventKernel.schedule` — allocates an :class:`Event` handle that
  supports :meth:`Event.cancel`.  Used for protocol timers.
- :meth:`EventKernel.post` — the allocation-slim fast path for
  fire-and-forget callbacks (the network layer's message deliveries, which
  are never cancelled).  Pushes a bare heap tuple and returns nothing.

Observability (DESIGN.md §10): the kernel carries two optional observers,
both ``None`` by default so the run loop pays one predicate per event and
nothing else:

- :attr:`EventKernel.tracer` — a :class:`repro.obs.trace.Tracer`; timer
  events (cancellable :class:`Event` entries) emit ``timer.fire`` /
  ``timer.skip``.  Message deliveries are traced at the network layer,
  where src/dst/kind are known, so ``post`` entries are not re-traced
  here.
- :attr:`EventKernel.profiler` — a
  :class:`repro.obs.profiler.KernelProfiler`, picked up ambiently from
  :func:`repro.obs.profiler.current_profiler` at construction, charging
  wall time per callback qualname.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from time import perf_counter
from typing import Any, Callable

from repro._validation import require_non_negative
from repro.obs.profiler import current_profiler


class Event:
    """A scheduled callback.  Returned by :meth:`EventKernel.schedule`.

    The only supported mutation is :meth:`cancel`, which marks the event so
    the kernel skips it when it reaches the head of the heap (lazy deletion).
    """

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "owner")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        #: Owning node id when scheduled via ``Network.schedule_owned``
        #: (None otherwise).  Pure attribution: traced ``timer.fire`` /
        #: ``timer.skip`` events carry it as their subject node, which is
        #: what lets the ``repro.verify`` timer-ownership monitor tie a
        #: fire back to a (possibly crashed) owner.
        self.owner = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once.

        Cancelling after the event has fired is a no-op (the callback has
        already run); owner registries rely on this so that crashing a node
        can blanket-cancel its timers without tracking which already fired.
        """
        self.cancelled = True

    def __repr__(self) -> str:
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"Event(t={self.time:.3f}, {name}, {state})"


class EventKernel:
    """Deterministic event-heap scheduler.

    Usage::

        kernel = EventKernel()
        kernel.schedule(5.0, handler, arg1, arg2)
        kernel.run()          # drain all events
        kernel.now            # time of the last executed event
    """

    # Heap entries are (time, seq, event_or_None, callback, args).  The seq
    # tie-breaker is unique, so the comparison never reaches element 2 and
    # Event objects need no ordering.  ``event_or_None`` is None for
    # fire-and-forget entries pushed via :meth:`post`.

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event | None, Callable[..., Any], tuple]] = []
        self._sequence = itertools.count()
        self._events_executed = 0
        #: Optional :class:`repro.obs.trace.Tracer` for timer events; the
        #: network attaches its own tracer here so one trace covers both.
        self.tracer = None
        #: Optional per-event-type wall-time profiler, inherited from the
        #: ambient :func:`repro.obs.profiler.profiled` context.
        self.profiler = current_profiler()

    @property
    def events_executed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* to run ``delay`` time units from now.

        Returns a cancellable :class:`Event` handle; use :meth:`post` when
        the handle is not needed (it skips the allocation).
        """
        require_non_negative(delay, "delay")
        event = Event(self.now + delay, callback, args)
        heapq.heappush(self._heap, (event.time, next(self._sequence), event, callback, args))
        return event

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast path: schedule a fire-and-forget callback (not cancellable).

        Identical ordering semantics to :meth:`schedule` (same clock, same
        FIFO sequence counter) without allocating an :class:`Event`.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), None, callback, args))

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now={self.now}")
        return self.schedule(time - self.now, callback, *args)

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget at absolute time ``time`` (>= now).

        The absolute-time sibling of :meth:`post`: no :class:`Event` is
        allocated and the entry cannot be cancelled.  Batch processors (the
        vectorised ELink engine) use this to place whole event cohorts at
        exact timestamps computed once, instead of round-tripping through
        ``now + delay`` at every push.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now={self.now}")
        heapq.heappush(self._heap, (time, next(self._sequence), None, callback, args))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events in time order.

        Stops when the heap is empty, when the next event is later than
        ``until``, or after ``max_events`` events (a runaway-protocol
        guard).  The guard is checked *before* the next event is popped, so
        on :class:`RuntimeError` the offending event is still queued and the
        kernel can be resumed with a larger budget.  Returns the kernel time
        afterwards.
        """
        heap = self._heap
        executed = 0
        tracer = self.tracer
        profiler = self.profiler
        while heap:
            entry = heap[0]
            if until is not None and entry[0] > until:
                self.now = until
                return self.now
            event = entry[2]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                if tracer is not None:
                    tracer.emit(
                        entry[0], "timer.skip", event.owner, callback=_callback_name(entry[3])
                    )
                continue
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"kernel exceeded max_events={max_events}; "
                    "a protocol is probably not terminating"
                )
            heapq.heappop(heap)
            self.now = entry[0]
            if event is not None:
                event.fired = True
                if tracer is not None:
                    tracer.emit(
                        self.now, "timer.fire", event.owner, callback=_callback_name(entry[3])
                    )
            if profiler is None:
                entry[3](*entry[4])
            else:
                started = perf_counter()
                entry[3](*entry[4])
                profiler.record(entry[3], perf_counter() - started)
            executed += 1
            self._events_executed += 1
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        tracer = self.tracer
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry[2]
            if event is not None and event.cancelled:
                if tracer is not None:
                    tracer.emit(
                        entry[0], "timer.skip", event.owner, callback=_callback_name(entry[3])
                    )
                continue
            self.now = entry[0]
            if event is not None:
                event.fired = True
                if tracer is not None:
                    tracer.emit(
                        self.now, "timer.fire", event.owner, callback=_callback_name(entry[3])
                    )
            if self.profiler is None:
                entry[3](*entry[4])
            else:
                started = perf_counter()
                entry[3](*entry[4])
                self.profiler.record(entry[3], perf_counter() - started)
            self._events_executed += 1
            return True
        return False

    def __repr__(self) -> str:
        return f"EventKernel(now={self.now:.3f}, pending={self.pending})"


class TimerWheelKernel(EventKernel):
    """Calendar-queue scheduler: exact-timestamp buckets over a small heap.

    Drop-in replacement for :class:`EventKernel` tuned for the simulator's
    dominant workload: many events sharing few distinct timestamps (the
    jitter=0 fast path delivers every hop at ``now + hop_delay``, and the
    implicit ELink schedule starts whole sentinel levels at the same
    instant).  Entries live in per-timestamp FIFO buckets
    (``dict[float, deque]``); a heap orders only the *distinct* timestamps.
    Pushing an event into an existing bucket is O(1) instead of
    O(log pending), and popping usually hits the current bucket without
    touching the heap.

    Determinism contract: identical observable ordering to
    :class:`EventKernel`.  The heap engine orders by ``(time, seq)``;
    here the times-heap provides the ``time`` ordering, and because each
    bucket is append-only FIFO, draining a bucket front-to-back *is* seq
    order — no sorting, no comparisons.  Far-future or irregular
    timestamps simply land in singleton buckets, degrading gracefully to
    heap behaviour.

    ``run``/``step``/``until``/``max_events`` semantics are inherited
    unchanged, including the resumability guarantee: the ``max_events``
    guard is checked *before* the head entry is popped.

    Invariant: a timestamp is in ``_times`` iff it has a (possibly empty)
    bucket in ``_buckets``; empty buckets are reaped lazily when they reach
    the head of the times-heap.
    """

    def __init__(self) -> None:
        super().__init__()  # keeps the (unused) base heap empty but valid
        self._buckets: dict[float, deque] = {}
        self._times: list[float] = []
        self._pending = 0
        #: Monotone count of pushes; the array engine's cohort batcher reads
        #: this to detect whether any entry was queued since it last
        #: appended to an open cohort (the sealing rule that keeps batched
        #: delivery in exact (time, seq) order).
        self.pushes = 0

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return self._pending

    def _push(self, time: float, event: Event | None, callback: Callable[..., Any], args: tuple) -> None:
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = deque()
            self._buckets[time] = bucket
            heapq.heappush(self._times, time)
        bucket.append((event, callback, args))
        self._pending += 1
        self.pushes += 1

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* ``delay`` from now; returns an Event."""
        require_non_negative(delay, "delay")
        event = Event(self.now + delay, callback, args)
        self._push(event.time, event, callback, args)
        return event

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast path: fire-and-forget callback, O(1) for repeated timestamps."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._push(self.now + delay, None, callback, args)

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget at absolute time ``time``; O(1) for repeated
        timestamps (same bucket discipline as :meth:`post`)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now={self.now}")
        self._push(time, None, callback, args)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events in time order; semantics match :class:`EventKernel`."""
        times = self._times
        buckets = self._buckets
        executed = 0
        tracer = self.tracer
        profiler = self.profiler
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if not bucket:
                heapq.heappop(times)
                if bucket is not None:
                    del buckets[time]
                continue
            if until is not None and time > until:
                self.now = until
                return self.now
            entry = bucket[0]
            event = entry[0]
            if event is not None and event.cancelled:
                bucket.popleft()
                self._pending -= 1
                if tracer is not None:
                    tracer.emit(time, "timer.skip", event.owner, callback=_callback_name(entry[1]))
                continue
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"kernel exceeded max_events={max_events}; "
                    "a protocol is probably not terminating"
                )
            bucket.popleft()
            self._pending -= 1
            self.now = time
            if event is not None:
                event.fired = True
                if tracer is not None:
                    tracer.emit(time, "timer.fire", event.owner, callback=_callback_name(entry[1]))
            if profiler is None:
                entry[1](*entry[2])
            else:
                started = perf_counter()
                entry[1](*entry[2])
                profiler.record(entry[1], perf_counter() - started)
            executed += 1
            self._events_executed += 1
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        tracer = self.tracer
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if not bucket:
                heapq.heappop(times)
                if bucket is not None:
                    del buckets[time]
                continue
            event, callback, args = bucket.popleft()
            self._pending -= 1
            if event is not None and event.cancelled:
                if tracer is not None:
                    tracer.emit(time, "timer.skip", event.owner, callback=_callback_name(callback))
                continue
            self.now = time
            if event is not None:
                event.fired = True
                if tracer is not None:
                    tracer.emit(time, "timer.fire", event.owner, callback=_callback_name(callback))
            if self.profiler is None:
                callback(*args)
            else:
                started = perf_counter()
                callback(*args)
                self.profiler.record(callback, perf_counter() - started)
            self._events_executed += 1
            return True
        return False

    def __repr__(self) -> str:
        return f"TimerWheelKernel(now={self.now:.3f}, pending={self.pending})"


def _callback_name(callback: Callable[..., Any]) -> str:
    """Stable, JSON-friendly identity for a timer callback."""
    return getattr(callback, "__qualname__", None) or repr(callback)

"""Sensor-network message-passing substrate.

The :class:`Network` wraps a communication graph (``networkx.Graph``) and an
:class:`~repro.sim.kernel.EventKernel`.  It delivers messages between
registered node objects with a fixed per-hop delay (the paper's §4 cost
model: "the worst-case delay over a hop is a single time unit") and charges
every transmission to a :class:`~repro.sim.stats.MessageStats` accumulator.

Delivery modes:

- :meth:`send` — single-hop unicast to a direct neighbour (cluster
  expansion and cluster-tree traffic always moves along graph edges).
- :meth:`route` — multi-hop unicast along a shortest path (quadtree
  signalling, query routing to cluster roots, update handling).  Charged
  ``values × hops``.
- :meth:`route_along` — multi-hop unicast along an explicit node path
  (cluster-tree root walks, backbone-tree edges).
- :meth:`broadcast` — one copy to every neighbour.

Nodes are any object with a ``handle_message(message)`` method, registered
via :meth:`register`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol, Sequence

import networkx as nx
import numpy as np

from repro._validation import require_positive
from repro.sim.energy import EnergyModel
from repro.sim.kernel import EventKernel
from repro.sim.messages import Message
from repro.sim.radio import LossyLinkModel
from repro.sim.stats import MessageStats


class MessageHandler(Protocol):
    """Anything that can receive messages from the network."""

    def handle_message(self, message: Message) -> None:
        """Deliver *message* to this endpoint."""
        ...


class Network:
    """Message-passing layer over a communication graph.

    Parameters
    ----------
    graph:
        The communication graph *CG*.  Nodes are arbitrary hashables.
    kernel:
        The event kernel driving delivery; a fresh one is created if omitted.
    hop_delay:
        Simulated time for one hop (default 1.0, the paper's unit delay).
    jitter:
        Asynchrony: each hop takes ``hop_delay * (1 + U(0, jitter))``
        (default 0 — the paper's synchronous unit-delay model).
    energy:
        Optional :class:`~repro.sim.energy.EnergyModel` charged per hop.
    loss:
        Optional :class:`~repro.sim.radio.LossyLinkModel`; failed hop
        transmissions are retransmitted (ARQ), inflating cost and delay.
    """

    def __init__(
        self,
        graph: nx.Graph,
        kernel: EventKernel | None = None,
        *,
        hop_delay: float = 1.0,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        energy: "EnergyModel | None" = None,
        loss: "LossyLinkModel | None" = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("communication graph must have at least one node")
        self.graph = graph
        self.kernel = kernel if kernel is not None else EventKernel()
        self.hop_delay = require_positive(hop_delay, "hop_delay")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        #: Asynchrony: each hop takes hop_delay * (1 + U(0, jitter)).  The
        #: paper's implicit timers absorb jitter only up to the stretch
        #: factor γ; explicit signalling is correct for any jitter.
        self.jitter = jitter
        self._jitter_rng = np.random.default_rng(jitter_seed)
        self.stats = MessageStats()
        self.energy = energy
        self.loss = loss
        self._handlers: dict[Hashable, MessageHandler] = {}
        self._sp_cache: dict[Hashable, dict[Hashable, Sequence[Hashable]]] = {}

    @property
    def max_hop_delay(self) -> float:
        """Worst-case single-transmission delay under the jitter model."""
        return self.hop_delay * (1.0 + self.jitter)

    def _sample_hop_delay(self) -> float:
        if self.jitter == 0.0:
            return self.hop_delay
        return self.hop_delay * (1.0 + float(self._jitter_rng.uniform(0.0, self.jitter)))

    def _hop_cost(self, sender: Hashable, receiver: Hashable, message: Message) -> int:
        """Charge one hop (with retransmissions under loss); returns the
        number of transmission attempts used for delay accounting."""
        attempts = self.loss.attempts_for_hop() if self.loss is not None else 1
        self.stats.record(message, hops=attempts)
        if self.energy is not None:
            # Every attempt burns TX at the sender; only the successful
            # one is received.
            for _ in range(attempts - 1):
                self.energy.spent[sender] = (
                    self.energy.spent.get(sender, 0.0)
                    + message.values * self.energy.tx_per_value
                )
            self.energy.charge_hop(sender, receiver, message.values)
        return attempts

    # ------------------------------------------------------------------
    # node registry
    # ------------------------------------------------------------------
    def register(self, node_id: Hashable, handler: MessageHandler) -> None:
        """Attach *handler* as the protocol endpoint for *node_id*."""
        if node_id not in self.graph:
            raise KeyError(f"node {node_id!r} is not in the communication graph")
        self._handlers[node_id] = handler

    def handler(self, node_id: Hashable) -> MessageHandler:
        """The registered handler for *node_id*."""
        try:
            return self._handlers[node_id]
        except KeyError:
            raise KeyError(f"no handler registered for node {node_id!r}") from None

    def neighbors(self, node_id: Hashable) -> Iterable[Hashable]:
        """Neighbours in the underlying structure."""
        return self.graph.neighbors(node_id)

    def degree(self, node_id: Hashable) -> int:
        """Degree of *node_id* in the communication graph."""
        return self.graph.degree(node_id)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Unicast *message* one hop to a direct neighbour of its source."""
        if not self.graph.has_edge(message.src, message.dst):
            raise ValueError(
                f"send() requires adjacency: {message.src!r} -> {message.dst!r} "
                "is not an edge; use route() for multi-hop delivery"
            )
        attempts = self._hop_cost(message.src, message.dst, message)
        delay = sum(self._sample_hop_delay() for _ in range(attempts))
        self.kernel.schedule(delay, self._deliver, message)

    def broadcast(self, src: Hashable, make_message) -> int:
        """Send ``make_message(neighbor)`` to every neighbour of *src*.

        *make_message* is a callable so each copy can carry its own ``dst``.
        Returns the number of copies sent.
        """
        count = 0
        for neighbor in self.graph.neighbors(src):
            self.send(make_message(neighbor))
            count += 1
        return count

    def route(self, message: Message) -> int:
        """Deliver *message* along a shortest path; returns the hop count.

        Cost: ``values × hops``; delay: ``hops × hop_delay``.  A message to
        self is free and delivered after one delay unit (processing time).
        """
        path = self.shortest_path(message.src, message.dst)
        return self._traverse(path, message)

    def route_along(self, path: Sequence[Hashable], message: Message) -> int:
        """Deliver *message* along an explicit *path* (src ... dst).

        The path must start at ``message.src``, end at ``message.dst`` and
        follow graph edges.  Returns the hop count.
        """
        if not path or path[0] != message.src or path[-1] != message.dst:
            raise ValueError("path must run from message.src to message.dst")
        for a, b in zip(path, path[1:]):
            if not self.graph.has_edge(a, b):
                raise ValueError(f"path step {a!r} -> {b!r} is not a graph edge")
        return self._traverse(path, message)

    def _traverse(self, path: Sequence[Hashable], message: Message) -> int:
        """Charge and deliver along *path*; returns the hop count."""
        hops = len(path) - 1
        if hops == 0:
            self.kernel.schedule(self.hop_delay, self._deliver, message)
            return 0
        delay = 0.0
        for a, b in zip(path, path[1:]):
            attempts = self._hop_cost(a, b, message)
            delay += sum(self._sample_hop_delay() for _ in range(attempts))
        self.kernel.schedule(delay, self._deliver, message)
        return hops

    def _deliver(self, message: Message) -> None:
        self.handler(message.dst).handle_message(message)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def shortest_path(self, src: Hashable, dst: Hashable) -> Sequence[Hashable]:
        """Shortest path from *src* to *dst* (cached per source)."""
        cache = self._sp_cache.get(src)
        if cache is None:
            cache = nx.single_source_shortest_path(self.graph, src)
            self._sp_cache[src] = cache
        try:
            return cache[dst]
        except KeyError:
            raise nx.NetworkXNoPath(f"no path from {src!r} to {dst!r}") from None

    def hop_distance(self, src: Hashable, dst: Hashable) -> int:
        """Shortest-path hop count between two nodes."""
        return len(self.shortest_path(src, dst)) - 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event kernel (convenience passthrough)."""
        return self.kernel.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        return (
            f"Network(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, t={self.kernel.now:.2f})"
        )

"""Sensor-network message-passing substrate.

The :class:`Network` wraps a communication graph (``networkx.Graph``) and an
:class:`~repro.sim.kernel.EventKernel`.  It delivers messages between
registered node objects with a fixed per-hop delay (the paper's §4 cost
model: "the worst-case delay over a hop is a single time unit") and charges
every transmission to a :class:`~repro.sim.stats.MessageStats` accumulator.

Delivery modes:

- :meth:`send` — single-hop unicast to a direct neighbour (cluster
  expansion and cluster-tree traffic always moves along graph edges).
- :meth:`route` — multi-hop unicast along a shortest path (quadtree
  signalling, query routing to cluster roots, update handling).  Charged
  ``values × hops``.
- :meth:`route_along` — multi-hop unicast along an explicit node path
  (cluster-tree root walks, backbone-tree edges).
- :meth:`broadcast` — one copy to every neighbour.

Nodes are any object with a ``handle_message(message)`` method, registered
via :meth:`register`.

Fault semantics (DESIGN.md §9): once the topology has been mutated through
the mutators, deliveries involving dead nodes or severed links become
**structured failures** — :meth:`send` returns ``False``, :meth:`route` /
:meth:`route_along` return ``-1`` — recorded in
:attr:`MessageStats.drops_by_reason <repro.sim.stats.MessageStats>` instead
of raising mid-simulation.  Failures are synchronous at the sender (the
link layer knows its ack never came), which is what protocol-level failure
detection keys off.  Genuine programming errors (sending over an edge that
never existed, routing in a graph that was disconnected from the start)
still raise, so the fault path cannot mask bugs in fault-free runs.

Performance notes (see DESIGN.md, "Fast-path simulation engine"):

- Adjacency sets and neighbour tuples are precomputed at construction, so
  the per-message path never touches ``graph.has_edge``/``graph.neighbors``.
  Topology changes go through the mutators :meth:`remove_node` /
  :meth:`restore_node` / :meth:`remove_edge` / :meth:`restore_edge`, which
  clear the path cache and patch the affected adjacency rows in place
  (O(local degree) per fault event); hand-mutating ``self.graph``
  requires a manual :meth:`invalidate_paths` (full rebuild).
- When ``jitter == 0 and loss is None`` (the paper's synchronous reliable
  model, and the default) deliveries take a zero-overhead fast path:
  constant hop delay, no RNG call, no per-attempt loop, and a single
  allocation-slim :meth:`~repro.sim.kernel.EventKernel.post`.
- Jitter samples are pre-drawn in chunks when enabled; numpy consumes the
  same bit stream either way, so jittery runs are byte-identical to the
  per-call sampling they replace.
- Shortest paths live in a bounded LRU keyed by ``(src, dst)`` and filled
  by BFS-on-demand (replicating networkx's expansion order exactly, so
  routed paths — and therefore per-node energy traces — are unchanged).
  The BFS stops at ``dst`` but caches every path it discovered on the way,
  so repeated routing from one source reuses the frontier instead of
  re-running BFS.  Bounded, unlike the per-source
  ``single_source_shortest_path`` cache it replaces, which held O(N²) path
  objects on 2500-node runs.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Protocol, Sequence

if TYPE_CHECKING:  # import-light: the tracer is only ever held, never built here
    from repro.obs.trace import Tracer

import networkx as nx
import numpy as np

from repro._validation import require_positive
from repro.sim.energy import EnergyModel
from repro.sim.kernel import Event, EventKernel
from repro.sim.messages import Message
from repro.sim.radio import LossyLinkModel
from repro.sim.stats import MessageStats

#: Batch size for pre-drawn jitter samples.
_JITTER_CHUNK = 256

#: Default bound on the (src, dst) -> path LRU cache.
DEFAULT_PATH_CACHE_SIZE = 32768

#: Environment variable selecting the default simulation engine.  Follows
#: the same worker-inheritance pattern as ``REPRO_CACHE``: the experiment
#: runner's ``--engine`` flag sets it in the parent, and spawned trial
#: workers inherit it, so one flag steers every Network built in a suite.
ENGINE_ENV = "REPRO_ENGINE"

_ENGINES = ("object", "array", "sharded")


def default_engine() -> str:
    """The engine :class:`Network` builds when none is requested explicitly.

    ``"object"`` (the reference engine) unless ``REPRO_ENGINE`` selects
    ``"array"`` — the struct-of-arrays fast engine in
    :mod:`repro.sim.engine`.
    """
    value = os.environ.get(ENGINE_ENV, "").strip().lower()
    if not value:
        return "object"
    if value not in _ENGINES:
        raise ValueError(f"{ENGINE_ENV} must be one of {_ENGINES}, got {value!r}")
    return value


class MessageHandler(Protocol):
    """Anything that can receive messages from the network."""

    def handle_message(self, message: Message) -> None:
        """Deliver *message* to this endpoint."""
        ...


class Network:
    """Message-passing layer over a communication graph.

    Parameters
    ----------
    graph:
        The communication graph *CG*.  Nodes are arbitrary hashables.
    kernel:
        The event kernel driving delivery; a fresh one is created if omitted.
    hop_delay:
        Simulated time for one hop (default 1.0, the paper's unit delay).
    jitter:
        Asynchrony: each hop takes ``hop_delay * (1 + U(0, jitter))``
        (default 0 — the paper's synchronous unit-delay model).
    energy:
        Optional :class:`~repro.sim.energy.EnergyModel` charged per hop.
    loss:
        Optional :class:`~repro.sim.radio.LossyLinkModel`; failed hop
        transmissions are retransmitted (ARQ), inflating cost and delay.
    path_cache_size:
        Bound on the shortest-path LRU (number of cached paths).
    engine:
        ``"object"`` (this reference implementation), ``"array"`` (the
        struct-of-arrays fast engine, :class:`repro.sim.engine.ArrayNetwork`),
        ``"sharded"`` (the multi-process epoch-barrier engine,
        :class:`repro.sim.shard.ShardedNetwork`) or ``None`` to follow
        :func:`default_engine` / the ``REPRO_ENGINE`` environment variable.
        ``Network(graph, engine="array")`` returns an ``ArrayNetwork``
        instance; every engine produces byte-identical protocol results at
        fixed seeds (see DESIGN.md §8).
    tracer:
        Optional :class:`repro.obs.trace.Tracer`.  When attached, the
        delivery layer emits ``msg.send`` / ``msg.route`` /
        ``msg.deliver`` / ``msg.drop``, the mutators emit ``node.crash``
        / ``node.recover`` / ``link.down`` / ``link.up``, and the same
        tracer is installed on the kernel for timer events.  Attach it at
        construction (or before nodes register): protocol runtimes cache
        the reference, so attaching later leaves them untraced.  ``None``
        (the default) costs one predicate per hook site — runs are
        byte-identical with or without the hooks compiled in.
    """

    #: Engine name this class implements; the ``engine=`` constructor
    #: argument dispatches between subclasses on this.
    engine = "object"

    def __new__(cls, *args, **kwargs):
        # Engine selector: ``Network(graph, engine="array")`` (or
        # REPRO_ENGINE=array) transparently builds the fast engine.
        # Subclasses instantiated directly bypass the dispatch.
        if cls is Network:
            requested = kwargs.get("engine") or default_engine()
            if requested == "array":
                from repro.sim.engine import ArrayNetwork

                return super().__new__(ArrayNetwork)
            if requested == "sharded":
                from repro.sim.shard import ShardedNetwork

                return super().__new__(ShardedNetwork)
            if requested not in _ENGINES:
                raise ValueError(f"engine must be one of {_ENGINES}, got {requested!r}")
        return super().__new__(cls)

    def __init__(
        self,
        graph: nx.Graph,
        kernel: EventKernel | None = None,
        *,
        hop_delay: float = 1.0,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        energy: "EnergyModel | None" = None,
        loss: "LossyLinkModel | None" = None,
        path_cache_size: int = DEFAULT_PATH_CACHE_SIZE,
        engine: str | None = None,
        tracer: "Tracer | None" = None,
    ):
        if engine is not None and engine != self.engine:
            raise ValueError(
                f"requested engine {engine!r} but {type(self).__name__} implements "
                f"{self.engine!r}"
            )
        if graph.number_of_nodes() == 0:
            raise ValueError("communication graph must have at least one node")
        if path_cache_size < 1:
            raise ValueError(f"path_cache_size must be >= 1, got {path_cache_size}")
        self.graph = graph
        self.kernel = kernel if kernel is not None else self._default_kernel()
        self.hop_delay = require_positive(hop_delay, "hop_delay")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        #: Asynchrony: each hop takes hop_delay * (1 + U(0, jitter)).  The
        #: paper's implicit timers absorb jitter only up to the stretch
        #: factor γ; explicit signalling is correct for any jitter.
        self.jitter = jitter
        self._jitter_rng = np.random.default_rng(jitter_seed)
        self._jitter_buffer: np.ndarray | None = None
        self._jitter_cursor = 0
        self.stats = MessageStats()
        self.energy = energy
        self.loss = loss
        #: True when the zero-overhead delivery path applies (synchronous
        #: unit-delay, reliable links — the paper's cost model).
        self._fast = jitter == 0.0 and loss is None
        self._handlers: dict[Hashable, MessageHandler] = {}
        #: Nodes removed by :meth:`remove_node` (fail-stop crashes).
        self.dead_nodes: set[Hashable] = set()
        #: Currently-severed links (frozenset endpoints) from :meth:`remove_edge`.
        self._removed_edges: set[frozenset] = set()
        #: True once any mutator has run; gates every fault check so the
        #: zero-fault delivery paths stay byte-identical and branch-cheap.
        self._mutated = False
        #: Cancellable timers registered per owning node (crash cleanup).
        self._owned_timers: dict[Hashable, list[Event]] = {}
        #: Optional observer called as ``on_drop(message, reason)`` after a
        #: structured delivery failure is recorded.
        self.on_drop: Callable[[Message, str], None] | None = None
        #: Optional tracer (DESIGN.md §10); every hook guards on it, so
        #: ``None`` keeps the delivery paths byte-identical to untraced
        #: builds.  Shared with the kernel so timers land in one stream.
        self._tracer = tracer
        if tracer is not None:
            self.kernel.tracer = tracer
        self._path_cache_size = path_cache_size
        self._path_cache: OrderedDict[tuple[Hashable, Hashable], tuple[Hashable, ...]] = (
            OrderedDict()
        )
        self._rebuild_adjacency()

    @staticmethod
    def _default_kernel() -> EventKernel:
        """Kernel built when the constructor is not handed one."""
        return EventKernel()

    def _rebuild_adjacency(self) -> None:
        # Neighbour tuples preserve graph.adj iteration order (BFS
        # tie-breaking depends on it); sets give O(1) edge checks.
        self._adj: dict[Hashable, tuple[Hashable, ...]] = {
            v: tuple(nbrs) for v, nbrs in self.graph.adj.items()
        }
        self._adj_sets: dict[Hashable, frozenset] = {
            v: frozenset(nbrs) for v, nbrs in self._adj.items()
        }

    # ------------------------------------------------------------------
    # incremental adjacency patches (fault mutators)
    #
    # The mutators used to call invalidate_paths(), re-deriving the whole
    # adjacency (O(N+E)) on every crash/churn event.  Each patch below
    # touches only the affected rows (O(sum of their degrees)) and
    # reproduces the exact row contents and ordering a full rebuild from
    # ``self.graph`` would give: networkx adjacency views iterate in edge
    # insertion order, removals preserve the order of survivors, and
    # re-adds append — so filtering/appending tuples matches a rebuild
    # element for element (the equivalence is pinned in tests).
    # ------------------------------------------------------------------
    def _adjacency_drop_node(self, node_id: Hashable, neighbours: Iterable[Hashable]) -> None:
        """Patch adjacency after *node_id* left ``self.graph``."""
        adj = self._adj
        adj_sets = self._adj_sets
        for nbr in neighbours:
            row = tuple(x for x in adj[nbr] if x != node_id)
            adj[nbr] = row
            adj_sets[nbr] = frozenset(row)
        del adj[node_id]
        del adj_sets[node_id]

    def _adjacency_add_node(self, node_id: Hashable) -> None:
        """Patch adjacency after *node_id* (re)joined ``self.graph``."""
        adj = self._adj
        adj_sets = self._adj_sets
        row = tuple(self.graph.adj[node_id])
        adj[node_id] = row
        adj_sets[node_id] = frozenset(row)
        for nbr in row:
            if node_id not in adj_sets[nbr]:
                patched = adj[nbr] + (node_id,)
                adj[nbr] = patched
                adj_sets[nbr] = frozenset(patched)

    def _adjacency_drop_edge(self, u: Hashable, v: Hashable) -> None:
        """Patch adjacency after edge *u*—*v* left ``self.graph``."""
        adj = self._adj
        adj_sets = self._adj_sets
        row_u = tuple(x for x in adj[u] if x != v)
        adj[u] = row_u
        adj_sets[u] = frozenset(row_u)
        row_v = tuple(x for x in adj[v] if x != u)
        adj[v] = row_v
        adj_sets[v] = frozenset(row_v)

    def _adjacency_add_edge(self, u: Hashable, v: Hashable) -> None:
        """Patch adjacency after edge *u*—*v* (re)joined ``self.graph``."""
        adj = self._adj
        adj_sets = self._adj_sets
        row_u = adj[u] + (v,)
        adj[u] = row_u
        adj_sets[u] = frozenset(row_u)
        row_v = adj[v] + (u,)
        adj[v] = row_v
        adj_sets[v] = frozenset(row_v)

    @property
    def tracer(self) -> "Tracer | None":
        """The attached tracer, or None when tracing is disabled."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: "Tracer | None") -> None:
        """Attach *tracer* to the network and its kernel.

        Constructor-time attachment is preferred: protocol runtimes
        cache the reference when they register (see class docstring).
        """
        self._tracer = tracer
        self.kernel.tracer = tracer

    @property
    def max_hop_delay(self) -> float:
        """Worst-case single-transmission delay under the jitter model."""
        return self.hop_delay * (1.0 + self.jitter)

    def _sample_hop_delay(self) -> float:
        if self.jitter == 0.0:
            return self.hop_delay
        buffer = self._jitter_buffer
        if buffer is None or self._jitter_cursor >= buffer.shape[0]:
            buffer = self._jitter_rng.uniform(0.0, self.jitter, size=_JITTER_CHUNK)
            self._jitter_buffer = buffer
            self._jitter_cursor = 0
        value = buffer[self._jitter_cursor]
        self._jitter_cursor += 1
        return self.hop_delay * (1.0 + float(value))

    def _hop_cost(self, sender: Hashable, receiver: Hashable, message: Message) -> int:
        """Charge one hop (with retransmissions under loss); returns the
        number of transmission attempts used for delay accounting."""
        attempts = self.loss.attempts_for_hop() if self.loss is not None else 1
        self.stats.record(message, hops=attempts)
        if self.energy is not None:
            # Every attempt burns TX at the sender; only the successful
            # one is received.
            for _ in range(attempts - 1):
                self.energy.spent[sender] = (
                    self.energy.spent.get(sender, 0.0)
                    + message.values * self.energy.tx_per_value
                )
            self.energy.charge_hop(sender, receiver, message.values)
        return attempts

    # ------------------------------------------------------------------
    # node registry
    # ------------------------------------------------------------------
    def register(self, node_id: Hashable, handler: MessageHandler) -> None:
        """Attach *handler* as the protocol endpoint for *node_id*."""
        if node_id not in self._adj:
            raise KeyError(f"node {node_id!r} is not in the communication graph")
        self._handlers[node_id] = handler

    def handler(self, node_id: Hashable) -> MessageHandler:
        """The registered handler for *node_id*."""
        try:
            return self._handlers[node_id]
        except KeyError:
            raise KeyError(f"no handler registered for node {node_id!r}") from None

    def neighbors(self, node_id: Hashable) -> Iterable[Hashable]:
        """Neighbours in the underlying structure."""
        return self._adj[node_id]

    def degree(self, node_id: Hashable) -> int:
        """Degree of *node_id* in the communication graph."""
        return len(self._adj[node_id])

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def send(self, message: Message) -> bool:
        """Unicast *message* one hop to a direct neighbour of its source.

        Returns ``True`` on (scheduled) delivery.  After a topology fault,
        sends to a crashed neighbour or over a severed link return ``False``
        and record a structured drop — the synchronous link layer tells the
        sender its transmission was not acknowledged.
        """
        src = message.src
        neighbours = self._adj_sets.get(src)
        if neighbours is None or message.dst not in neighbours:
            if self._mutated:
                reason = self._endpoint_failure(src, message.dst)
                if reason is None and frozenset((src, message.dst)) in self._removed_edges:
                    reason = "link_down"
                if reason is not None:
                    self._drop(message, reason)
                    return False
            raise ValueError(
                f"send() requires adjacency: {message.src!r} -> {message.dst!r} "
                "is not an edge; use route() for multi-hop delivery"
            )
        if self._fast:
            self.stats.record(message)
            if self.energy is not None:
                self.energy.charge_hop(src, message.dst, message.values)
            if self._tracer is not None:
                self._trace_send(message)
            self._post_delivery(self.hop_delay, message)
            return True
        attempts = self._hop_cost(src, message.dst, message)
        delay = sum(self._sample_hop_delay() for _ in range(attempts))
        if self._tracer is not None:
            self._trace_send(message, attempts=attempts)
        self._post_delivery(delay, message)
        return True

    def _post_delivery(self, delay: float, message: Message) -> None:
        """Schedule *message* to arrive ``delay`` from now.

        Single override point for the delivery queue: the array engine
        replaces it with a cohort-batched path that groups same-timestamp
        deliveries into one kernel event.
        """
        self.kernel.post(delay, self._deliver, message)

    def _trace_send(self, message: Message, attempts: int = 1) -> None:
        """Emit ``msg.send`` (single-hop unicast scheduled)."""
        self._tracer.emit(
            self.kernel.now,
            "msg.send",
            message.src,
            dst=message.dst,
            kind=message.kind,
            values=message.values,
            attempts=attempts,
        )

    def broadcast(self, src: Hashable, make_message) -> int:
        """Send ``make_message(neighbor)`` to every neighbour of *src*.

        *make_message* is a callable so each copy can carry its own ``dst``.
        Returns the number of copies sent.
        """
        count = 0
        if self._mutated and src in self.dead_nodes:
            return 0
        for neighbor in self._adj[src]:
            if self.send(make_message(neighbor)):
                count += 1
        return count

    def broadcast_values(
        self,
        src: Hashable,
        kind: str,
        payload=None,
        values: int = 1,
        category: str = "",
    ) -> int:
        """Broadcast one homogeneous *kind* message to every neighbour.

        Equivalent to :meth:`broadcast` with a ``Message(kind, src, nbr,
        payload, values)`` factory — the common case for protocol
        neighbourhood floods.  Exists as its own entry point so the array
        engine can override it with a batched path (shared cost charging,
        one delivery cohort) while this reference implementation keeps the
        per-message semantics.
        """
        return self.broadcast(
            src, lambda neighbor: Message(kind, src, neighbor, payload, values, category)
        )

    def route(self, message: Message) -> int:
        """Deliver *message* along a shortest path; returns the hop count.

        Cost: ``values × hops``; delay: ``hops × hop_delay``.  A message to
        self is free and delivered after one delay unit (processing time).

        After a topology fault, an unreachable/dead destination yields a
        structured drop and returns ``-1`` instead of raising; a graph that
        was disconnected from the start (never mutated) still raises
        :class:`networkx.NetworkXNoPath` — that is a configuration bug.
        """
        if self._mutated:
            reason = self._endpoint_failure(message.src, message.dst)
            if reason is None:
                try:
                    path = self.shortest_path(message.src, message.dst)
                except (nx.NodeNotFound, nx.NetworkXNoPath):
                    reason = "no_route"
            if reason is not None:
                self._drop(message, reason)
                return -1
            return self._traverse(path, message)
        path = self.shortest_path(message.src, message.dst)
        return self._traverse(path, message)

    def route_along(self, path: Sequence[Hashable], message: Message) -> int:
        """Deliver *message* along an explicit *path* (src ... dst).

        The path must start at ``message.src``, end at ``message.dst`` and
        follow graph edges.  Returns the hop count, or ``-1`` (with a
        structured drop) when a fault has removed a node or link on the
        path.
        """
        if not path or path[0] != message.src or path[-1] != message.dst:
            raise ValueError("path must run from message.src to message.dst")
        adj_sets = self._adj_sets
        if self._mutated:
            reason = self._endpoint_failure(message.src, message.dst)
            if reason is not None:
                self._drop(message, reason)
                return -1
        for a, b in zip(path, path[1:]):
            if b not in adj_sets.get(a, ()):
                if self._mutated:
                    if a in self.dead_nodes or b in self.dead_nodes:
                        self._drop(message, "dead_relay")
                        return -1
                    if frozenset((a, b)) in self._removed_edges:
                        self._drop(message, "link_down")
                        return -1
                raise ValueError(f"path step {a!r} -> {b!r} is not a graph edge")
        return self._traverse(path, message)

    def _traverse(self, path: Sequence[Hashable], message: Message) -> int:
        """Charge and deliver along *path*; returns the hop count."""
        hops = len(path) - 1
        if self._tracer is not None:
            self._tracer.emit(
                self.kernel.now,
                "msg.route",
                message.src,
                dst=message.dst,
                kind=message.kind,
                values=message.values,
                hops=hops,
            )
        if hops == 0:
            self._post_delivery(self.hop_delay, message)
            return 0
        if self._fast:
            # One stats record covers all hops (counters are additive);
            # energy still charges each edge's endpoints individually.
            self.stats.record(message, hops=hops)
            if self.energy is not None:
                for a, b in zip(path, path[1:]):
                    self.energy.charge_hop(a, b, message.values)
            self._post_delivery(hops * self.hop_delay, message)
            return hops
        delay = 0.0
        for a, b in zip(path, path[1:]):
            attempts = self._hop_cost(a, b, message)
            delay += sum(self._sample_hop_delay() for _ in range(attempts))
        self._post_delivery(delay, message)
        return hops

    def _deliver(self, message: Message) -> None:
        if self.dead_nodes and message.dst in self.dead_nodes:
            # In-flight delivery to a node that crashed after the send was
            # scheduled: the transmission cost was already charged; the
            # message silently disappears at the dead radio.
            self._drop(message, "dead_destination")
            return
        if self._tracer is not None:
            self._tracer.emit(
                self.kernel.now, "msg.deliver", message.dst, src=message.src, kind=message.kind
            )
        self.handler(message.dst).handle_message(message)

    # ------------------------------------------------------------------
    # faults: structured failures, topology mutators, owned timers
    # ------------------------------------------------------------------
    def _endpoint_failure(self, src: Hashable, dst: Hashable) -> str | None:
        """Reason string if either endpoint is dead, else None."""
        if src in self.dead_nodes:
            return "dead_source"
        if dst in self.dead_nodes:
            return "dead_destination"
        return None

    def _drop(self, message: Message, reason: str) -> None:
        """Record a structured delivery failure and notify the observer."""
        self.stats.record_drop(message, reason)
        if self._tracer is not None:
            self._tracer.emit(
                self.kernel.now,
                "msg.drop",
                message.src,
                dst=message.dst,
                kind=message.kind,
                reason=reason,
            )
        if self.on_drop is not None:
            self.on_drop(message, reason)

    def is_alive(self, node_id: Hashable) -> bool:
        """False once *node_id* has been crashed via :meth:`remove_node`."""
        return node_id not in self.dead_nodes

    def remove_node(self, node_id: Hashable) -> tuple[Hashable, ...]:
        """Fail-stop crash: remove *node_id* and its incident edges.

        Cancels every pending timer registered for the node via
        :meth:`schedule_owned`, marks it dead (so in-flight deliveries to it
        drop), mutates ``self.graph`` and invalidates the path cache.
        Returns the node's neighbours at crash time, for a later
        :meth:`restore_node`.  Idempotent: crashing a dead node returns
        ``()``.
        """
        if node_id in self.dead_nodes:
            return ()
        if node_id not in self._adj:
            raise KeyError(f"node {node_id!r} is not in the communication graph")
        neighbours = self._adj[node_id]
        self.cancel_owned(node_id)
        self.graph.remove_node(node_id)
        self.dead_nodes.add(node_id)
        self._mutated = True
        self._path_cache.clear()
        self._adjacency_drop_node(node_id, neighbours)
        if self._tracer is not None:
            self._tracer.emit(
                self.kernel.now, "node.crash", node_id, degree=len(neighbours)
            )
        return neighbours

    def restore_node(self, node_id: Hashable, neighbours: Iterable[Hashable] = ()) -> None:
        """Recover a crashed node, re-attaching it to the still-alive subset
        of *neighbours* (typically the tuple :meth:`remove_node` returned;
        links independently severed by :meth:`remove_edge` stay down)."""
        self.graph.add_node(node_id)
        for nbr in neighbours:
            if (
                nbr in self.graph
                and nbr not in self.dead_nodes
                and frozenset((node_id, nbr)) not in self._removed_edges
            ):
                self.graph.add_edge(node_id, nbr)
        self.dead_nodes.discard(node_id)
        self._mutated = True
        self._path_cache.clear()
        self._adjacency_add_node(node_id)
        if self._tracer is not None:
            self._tracer.emit(
                self.kernel.now, "node.recover", node_id, degree=self.graph.degree(node_id)
            )

    def remove_edge(self, u: Hashable, v: Hashable) -> bool:
        """Sever the link *u*—*v* (churn).  Returns False if already down."""
        if not self.graph.has_edge(u, v):
            return False
        self.graph.remove_edge(u, v)
        self._removed_edges.add(frozenset((u, v)))
        self._mutated = True
        self._path_cache.clear()
        self._adjacency_drop_edge(u, v)
        if self._tracer is not None:
            self._tracer.emit(self.kernel.now, "link.down", u, other=v)
        return True

    def restore_edge(self, u: Hashable, v: Hashable) -> bool:
        """Bring a severed link back up.  Returns False if the link was not
        severed by :meth:`remove_edge` or an endpoint is (still) dead."""
        key = frozenset((u, v))
        if key not in self._removed_edges:
            return False
        if u in self.dead_nodes or v in self.dead_nodes:
            return False
        self._removed_edges.discard(key)
        self.graph.add_edge(u, v)
        self._mutated = True
        self._path_cache.clear()
        self._adjacency_add_edge(u, v)
        if self._tracer is not None:
            self._tracer.emit(self.kernel.now, "link.up", u, other=v)
        return True

    def schedule_owned(
        self, owner: Hashable, delay: float, callback, *args
    ) -> Event:
        """Schedule a cancellable timer registered to *owner*.

        Crashing *owner* via :meth:`remove_node` blanket-cancels all its
        pending timers; fired timers are pruned lazily.  The event is
        stamped with its owner, so traced ``timer.fire``/``timer.skip``
        events are attributed to the owning node.
        """
        event = self.kernel.schedule(delay, callback, *args)
        event.owner = owner
        bucket = self._owned_timers.setdefault(owner, [])
        bucket.append(event)
        if len(bucket) > 64:
            self._owned_timers[owner] = [
                ev for ev in bucket if not ev.fired and not ev.cancelled
            ]
        return event

    def cancel_owned(self, owner: Hashable) -> int:
        """Cancel every pending timer registered to *owner*; returns the
        number of timers that were still pending."""
        cancelled = 0
        for event in self._owned_timers.pop(owner, ()):
            if not event.fired and not event.cancelled:
                event.cancel()
                cancelled += 1
        if cancelled and self._tracer is not None:
            self._tracer.emit(self.kernel.now, "timer.cancel", owner, count=cancelled)
        return cancelled

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def shortest_path(self, src: Hashable, dst: Hashable) -> Sequence[Hashable]:
        """Shortest path from *src* to *dst* (bounded LRU + BFS on demand).

        Expansion order replicates ``networkx.single_source_shortest_path``
        exactly, so the returned path (not just its length) matches what the
        unbounded per-source cache used to produce.
        """
        cache = self._path_cache
        key = (src, dst)
        path = cache.get(key)
        if path is not None:
            cache.move_to_end(key)
            return path
        return self._bfs_path(src, dst)

    def _bfs_path(self, src: Hashable, dst: Hashable) -> tuple[Hashable, ...]:
        adj = self._adj
        if src not in adj:
            raise nx.NodeNotFound(f"source {src!r} is not in the communication graph")
        if dst not in adj:
            raise nx.NetworkXNoPath(f"no path from {src!r} to {dst!r}")
        cache = self._path_cache
        limit = self._path_cache_size

        def remember(key: tuple[Hashable, Hashable], path: tuple[Hashable, ...]) -> None:
            cache[key] = path
            cache.move_to_end(key)
            if len(cache) > limit:
                cache.popitem(last=False)

        paths: dict[Hashable, tuple[Hashable, ...]] = {src: (src,)}
        remember((src, src), (src,))
        if dst == src:
            return (src,)
        # Level-order expansion in adjacency order — identical tie-breaking
        # to nx.single_source_shortest_path, stopping once dst is reached.
        # Every path discovered on the way is cached: later routes from the
        # same source to anything at most as far as dst are cache hits.
        level: list[Hashable] = [src]
        while level:
            next_level: list[Hashable] = []
            for v in level:
                base = paths[v]
                for w in adj[v]:
                    if w not in paths:
                        path = base + (w,)
                        paths[w] = path
                        remember((src, w), path)
                        if w == dst:
                            return path
                        next_level.append(w)
            level = next_level
        raise nx.NetworkXNoPath(f"no path from {src!r} to {dst!r}")

    def invalidate_paths(self) -> None:
        """Resynchronize with ``self.graph`` after a topology mutation.

        The network precomputes adjacency and caches shortest paths, so any
        *hand*-mutation of ``self.graph`` MUST be followed by a call to this
        method; otherwise sends keep validating against the old adjacency
        and routes silently follow stale paths.  Prefer the mutators
        (:meth:`remove_node` / :meth:`restore_node` / :meth:`remove_edge` /
        :meth:`restore_edge`), which patch the affected adjacency rows
        incrementally (O(local degree) per event, not O(N+E)) and
        additionally maintain the structured-failure bookkeeping.
        """
        self._path_cache.clear()
        self._rebuild_adjacency()

    def hop_distance(self, src: Hashable, dst: Hashable) -> int:
        """Shortest-path hop count between two nodes."""
        return len(self.shortest_path(src, dst)) - 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event kernel (convenience passthrough)."""
        return self.kernel.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        return (
            f"Network(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, t={self.kernel.now:.2f})"
        )

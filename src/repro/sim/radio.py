"""Lossy-link model with per-hop ARQ retransmission.

The protocols in this library assume reliable delivery (as does the
paper's analysis).  Real sensor radios drop packets, so the network layer
can interpose this model: every hop transmission independently fails with
probability *p* and is retransmitted until it gets through (automatic
repeat request at the link layer).  Protocol logic is untouched; costs and
delays inflate by the expected ``1/(1-p)`` factor, which the failure-
injection tests and the loss ablation quantify.

Sampling is deterministic per seed so lossy runs stay reproducible.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_range, require_int_at_least


#: Batch size for pre-drawn geometric samples (one heap refill per chunk).
_SAMPLE_CHUNK = 256


class LossyLinkModel:
    """Per-hop geometric retransmission sampler.

    Samples are pre-drawn in chunks: numpy's ``Generator`` consumes the
    same bit stream for a size-*n* draw as for *n* scalar draws, so the
    attempt sequence is identical to per-call sampling while paying the
    generator overhead once per chunk.
    """

    def __init__(self, loss_probability: float, *, seed: int = 0, max_attempts: int = 1000):
        require_in_range(loss_probability, 0.0, 1.0, "loss_probability")
        if loss_probability >= 1.0:
            raise ValueError("loss_probability must be < 1 (links must eventually deliver)")
        require_int_at_least(max_attempts, 1, "max_attempts")
        self.loss_probability = loss_probability
        self.max_attempts = max_attempts
        self._rng = np.random.default_rng(seed)
        self._buffer: np.ndarray | None = None
        self._cursor = 0

    def attempts_for_hop(self) -> int:
        """Number of transmissions until one succeeds (>= 1).

        ``Generator.geometric(p)`` already returns the number of trials up
        to and including the first success.
        """
        if self.loss_probability == 0.0:
            return 1
        if self._buffer is None or self._cursor >= self._buffer.shape[0]:
            self._buffer = self._rng.geometric(1.0 - self.loss_probability, size=_SAMPLE_CHUNK)
            self._cursor = 0
        attempts = int(self._buffer[self._cursor])
        self._cursor += 1
        return max(1, min(attempts, self.max_attempts))

    def expected_inflation(self) -> float:
        """Expected cost multiplier, 1/(1-p)."""
        return 1.0 / (1.0 - self.loss_probability)

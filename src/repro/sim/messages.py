"""Message types and the communication cost model (paper §8.2).

The paper measures communication as the *total number of messages
exchanged*, where "a message can transmit a single coefficient or a data
value".  We therefore attach to every :class:`Message` a ``values`` count —
the number of scalar values it carries (a k-coefficient feature costs k; a
pure control signal costs 1) — and charge ``values × hops`` toward the
message total when it travels.

Message kinds mirror the paper's protocol vocabulary:

- ``expand`` — ELink cluster-expansion offer carrying the root feature
  (Fig 16).
- ``ack1`` / ``ack2`` — cluster-tree child announcement / subtree-completion
  (Fig 18).
- ``phase1`` / ``phase2`` / ``start`` — the explicit-signalling quadtree
  synchronization (Fig 18).
- ``leave`` — sent to the previous cluster parent when a node switches
  clusters, so the old subtree's completion accounting stays correct (the
  paper allows switching but leaves the book-keeping implicit).
- query/update kinds (``query``, ``result``, ``update``, ...) used by the
  index, query and maintenance layers.

Each message also carries a ``category`` used to aggregate statistics
(clustering vs. synchronization vs. querying vs. update handling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

#: Cost categories used for reporting.
CATEGORY_CLUSTERING = "clustering"
CATEGORY_SYNC = "sync"
CATEGORY_QUERY = "query"
CATEGORY_UPDATE = "update"
CATEGORY_DATA = "data"
CATEGORY_REPAIR = "repair"

_DEFAULT_CATEGORIES = {
    "expand": CATEGORY_CLUSTERING,
    "ack1": CATEGORY_CLUSTERING,
    "ack2": CATEGORY_CLUSTERING,
    "leave": CATEGORY_CLUSTERING,
    "phase1": CATEGORY_SYNC,
    "phase2": CATEGORY_SYNC,
    "start": CATEGORY_SYNC,
    "query": CATEGORY_QUERY,
    "result": CATEGORY_QUERY,
    "update": CATEGORY_UPDATE,
    "feature": CATEGORY_DATA,
    "raw": CATEGORY_DATA,
    # Failure detection and repair traffic (DESIGN.md §9): liveness probes,
    # parent heartbeats and sentinel-failover takeovers are charged to a
    # separate category so fault experiments can report repair overhead
    # independently of the paper's clustering/sync totals.
    "probe": CATEGORY_REPAIR,
    "hb": CATEGORY_REPAIR,
    "probe_sentinel": CATEGORY_REPAIR,
    "takeover": CATEGORY_REPAIR,
}


@dataclass(slots=True)
class Message:
    """A protocol message.

    Parameters
    ----------
    kind:
        Protocol message type (``"expand"``, ``"ack2"``, ...).
    src, dst:
        Node identifiers.  ``dst`` is the final recipient; multi-hop
        delivery is handled (and charged) by the network layer.
    payload:
        Arbitrary protocol data; never inspected by the network layer.
    values:
        Number of scalar values the message carries, for cost accounting.
    category:
        Cost-reporting bucket; inferred from ``kind`` when omitted.
    """

    kind: str
    src: Hashable
    dst: Hashable
    payload: Any = None
    values: int = 1
    category: str = field(default="")

    def __post_init__(self) -> None:
        if self.values < 1:
            raise ValueError(f"message must carry at least one value, got {self.values}")
        if not self.category:
            self.category = _DEFAULT_CATEGORIES.get(self.kind, CATEGORY_DATA)

    @classmethod
    def batch(
        cls,
        kind: str,
        src: Hashable,
        dsts: Any,
        payload: Any,
        values: int,
        category: str,
        out: "list | None" = None,
    ) -> "list[Message]":
        """One identical message per destination, allocation-slim.

        Fast path for homogeneous broadcasts (the array engine's batched
        delivery): the caller validates ``values`` and resolves
        ``category`` once, so per-message ``__init__``/``__post_init__``
        work is skipped.  Field-for-field identical to constructing each
        message with ``Message(kind, src, dst, payload, values, category)``.

        When *out* is given the messages are appended to it (the array
        engine passes an open delivery cohort, skipping an intermediate
        list); a fresh list is returned otherwise.
        """
        if values < 1:
            raise ValueError(f"message must carry at least one value, got {values}")
        if not category:
            category = _DEFAULT_CATEGORIES.get(kind, CATEGORY_DATA)
        new = object.__new__
        if out is None:
            out = []
        append = out.append
        for dst in dsts:
            message = new(cls)
            message.kind = kind
            message.src = src
            message.dst = dst
            message.payload = payload
            message.values = values
            message.category = category
            append(message)
        return out

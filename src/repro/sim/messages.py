"""Message types and the communication cost model (paper §8.2).

The paper measures communication as the *total number of messages
exchanged*, where "a message can transmit a single coefficient or a data
value".  We therefore attach to every :class:`Message` a ``values`` count —
the number of scalar values it carries (a k-coefficient feature costs k; a
pure control signal costs 1) — and charge ``values × hops`` toward the
message total when it travels.

Message kinds mirror the paper's protocol vocabulary:

- ``expand`` — ELink cluster-expansion offer carrying the root feature
  (Fig 16).
- ``ack1`` / ``ack2`` — cluster-tree child announcement / subtree-completion
  (Fig 18).
- ``phase1`` / ``phase2`` / ``start`` — the explicit-signalling quadtree
  synchronization (Fig 18).
- ``leave`` — sent to the previous cluster parent when a node switches
  clusters, so the old subtree's completion accounting stays correct (the
  paper allows switching but leaves the book-keeping implicit).
- query/update kinds (``query``, ``result``, ``update``, ...) used by the
  index, query and maintenance layers.

Each message also carries a ``category`` used to aggregate statistics
(clustering vs. synchronization vs. querying vs. update handling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

#: Cost categories used for reporting.
CATEGORY_CLUSTERING = "clustering"
CATEGORY_SYNC = "sync"
CATEGORY_QUERY = "query"
CATEGORY_UPDATE = "update"
CATEGORY_DATA = "data"
CATEGORY_REPAIR = "repair"

_DEFAULT_CATEGORIES = {
    "expand": CATEGORY_CLUSTERING,
    "ack1": CATEGORY_CLUSTERING,
    "ack2": CATEGORY_CLUSTERING,
    "leave": CATEGORY_CLUSTERING,
    "phase1": CATEGORY_SYNC,
    "phase2": CATEGORY_SYNC,
    "start": CATEGORY_SYNC,
    "query": CATEGORY_QUERY,
    "result": CATEGORY_QUERY,
    "update": CATEGORY_UPDATE,
    "feature": CATEGORY_DATA,
    "raw": CATEGORY_DATA,
    # Failure detection and repair traffic (DESIGN.md §9): liveness probes,
    # parent heartbeats and sentinel-failover takeovers are charged to a
    # separate category so fault experiments can report repair overhead
    # independently of the paper's clustering/sync totals.
    "probe": CATEGORY_REPAIR,
    "hb": CATEGORY_REPAIR,
    "probe_sentinel": CATEGORY_REPAIR,
    "takeover": CATEGORY_REPAIR,
}


class MessageArena:
    """Columnar store of fast-path messages: int rows + a payload-ref column.

    The array engine's delivery cohorts and the ``--micro`` allocation
    bench keep in-flight broadcast traffic as *rows* — parallel columns of
    small ints (``kind_col``/``src_col``/``dst_col``/``values_col``, node
    ids as indices into a caller-supplied ``node_list``) plus a
    ``payload_col`` of references into a per-round payload arena — instead
    of one :class:`Message` object per copy.  A :class:`Message` is
    :meth:`materialize`-d lazily, only when a consumer genuinely needs the
    object: a tracer, a fault-plan drop record, or an object-engine
    handler.  Rows that never reach such a consumer (vectorised protocol
    rounds, deliveries to dead nodes short-circuited by the caller) never
    allocate.

    Kinds and categories are interned once per arena (``kind_id``);
    payloads are appended once per broadcast block (``payload_ref``), so a
    k-neighbour flood stores one payload reference k times rather than k
    object pointers into k ``Message.payload`` slots.

    ``clear()`` resets the rows and the payload arena (kind interning
    survives — the protocol vocabulary is stable across rounds).
    """

    __slots__ = (
        "node_list",
        "kinds",
        "categories",
        "payloads",
        "kind_col",
        "src_col",
        "dst_col",
        "values_col",
        "payload_col",
        "_kind_ids",
    )

    def __init__(self, node_list: "list | None" = None):
        #: Optional index -> node id mapping used by :meth:`materialize`;
        #: callers that store raw ints (already node indices) may leave it
        #: None and map ids themselves.
        self.node_list = node_list
        self.kinds: list[str] = []
        self.categories: list[str] = []
        self._kind_ids: dict[str, int] = {}
        self.payloads: list[Any] = []
        self.kind_col: list[int] = []
        self.src_col: list[int] = []
        self.dst_col: list[int] = []
        self.values_col: list[int] = []
        self.payload_col: list[int] = []

    def __len__(self) -> int:
        return len(self.kind_col)

    def kind_id(self, kind: str, category: str = "") -> int:
        """Intern *kind* (resolving its category once) and return its id."""
        kid = self._kind_ids.get(kind)
        if kid is None:
            kid = len(self.kinds)
            self._kind_ids[kind] = kid
            self.kinds.append(kind)
            self.categories.append(category or _DEFAULT_CATEGORIES.get(kind, CATEGORY_DATA))
        return kid

    def payload_ref(self, payload: Any) -> int:
        """Append *payload* to the arena and return its reference."""
        self.payloads.append(payload)
        return len(self.payloads) - 1

    def append_block(
        self, kind_id: int, src: int, dsts: "list[int]", payload_ref: int, values: int
    ) -> tuple[int, int]:
        """Append one homogeneous broadcast block; returns its row span.

        *src*/*dsts* are node **indices**.  The block shares one payload
        reference; per-row state is four ints.  Returns ``(start, stop)``
        row bounds for a later :class:`ArenaSpan`.
        """
        start = len(self.kind_col)
        count = len(dsts)
        self.kind_col.extend([kind_id] * count)
        self.src_col.extend([src] * count)
        self.dst_col.extend(dsts)
        self.values_col.extend([values] * count)
        self.payload_col.extend([payload_ref] * count)
        return start, start + count

    def materialize(self, row: int) -> Message:
        """Build the :class:`Message` object for *row* (field-identical to
        eager construction; skips ``__init__`` like :meth:`Message.batch`)."""
        kid = self.kind_col[row]
        node_list = self.node_list
        message = object.__new__(Message)
        message.kind = self.kinds[kid]
        src = self.src_col[row]
        dst = self.dst_col[row]
        message.src = src if node_list is None else node_list[src]
        message.dst = dst if node_list is None else node_list[dst]
        message.payload = self.payloads[self.payload_col[row]]
        message.values = self.values_col[row]
        message.category = self.categories[kid]
        return message

    def clear(self) -> None:
        """Drop all rows and payloads (interned kinds survive)."""
        self.payloads.clear()
        self.kind_col.clear()
        self.src_col.clear()
        self.dst_col.clear()
        self.values_col.clear()
        self.payload_col.clear()


class ArenaSpan:
    """A contiguous row range of a :class:`MessageArena` inside a delivery
    cohort: the index-based stand-in for ``count`` :class:`Message` copies
    of one broadcast."""

    __slots__ = ("arena", "start", "stop")

    def __init__(self, arena: MessageArena, start: int, stop: int):
        self.arena = arena
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def __repr__(self) -> str:
        return f"ArenaSpan({self.start}:{self.stop})"


@dataclass(slots=True)
class Message:
    """A protocol message.

    Parameters
    ----------
    kind:
        Protocol message type (``"expand"``, ``"ack2"``, ...).
    src, dst:
        Node identifiers.  ``dst`` is the final recipient; multi-hop
        delivery is handled (and charged) by the network layer.
    payload:
        Arbitrary protocol data; never inspected by the network layer.
    values:
        Number of scalar values the message carries, for cost accounting.
    category:
        Cost-reporting bucket; inferred from ``kind`` when omitted.
    """

    kind: str
    src: Hashable
    dst: Hashable
    payload: Any = None
    values: int = 1
    category: str = field(default="")

    def __post_init__(self) -> None:
        if self.values < 1:
            raise ValueError(f"message must carry at least one value, got {self.values}")
        if not self.category:
            self.category = _DEFAULT_CATEGORIES.get(self.kind, CATEGORY_DATA)

    @classmethod
    def batch(
        cls,
        kind: str,
        src: Hashable,
        dsts: Any,
        payload: Any,
        values: int,
        category: str,
        out: "list | None" = None,
    ) -> "list[Message]":
        """One identical message per destination, allocation-slim.

        Fast path for homogeneous broadcasts (the array engine's batched
        delivery): the caller validates ``values`` and resolves
        ``category`` once, so per-message ``__init__``/``__post_init__``
        work is skipped.  Field-for-field identical to constructing each
        message with ``Message(kind, src, dst, payload, values, category)``.

        When *out* is given the messages are appended to it (the array
        engine passes an open delivery cohort, skipping an intermediate
        list); a fresh list is returned otherwise.
        """
        if values < 1:
            raise ValueError(f"message must carry at least one value, got {values}")
        if not category:
            category = _DEFAULT_CATEGORIES.get(kind, CATEGORY_DATA)
        new = object.__new__
        if out is None:
            out = []
        append = out.append
        for dst in dsts:
            message = new(cls)
            message.kind = kind
            message.src = src
            message.dst = dst
            message.payload = payload
            message.values = values
            message.category = category
            append(message)
        return out

"""Base class for protocol node runtimes.

A :class:`ProtocolNode` owns a node id, a reference to the network, and a
feature value; it dispatches incoming messages to ``handle_<kind>`` methods
and provides timer helpers.  ELink nodes, spanning-forest nodes and query
processors all build on it.

Observability: registration caches the network's tracer as ``self._obs``
(None when tracing is disabled), so protocol hooks — here and in
subclasses like :class:`~repro.core.elink.ELinkNode` — cost a single
``is not None`` predicate.  :meth:`ProtocolNode.set_timer` emits
``timer.set`` with the owning node's id, which is where timers gain the
per-node attribution the kernel (which sees only callbacks) cannot give
them.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.sim.kernel import Event
from repro.sim.messages import Message
from repro.sim.network import Network


class ProtocolNode:
    """A sensor node participating in a message-driven protocol.

    Subclasses implement ``handle_<kind>(message)`` methods for each message
    kind they understand; unknown kinds raise so protocol bugs surface
    immediately instead of being silently dropped.
    """

    def __init__(self, node_id: Hashable, network: Network, feature: np.ndarray):
        self.node_id = node_id
        self.network = network
        self.feature = feature
        self._handlers: dict[str, Any] = {}
        #: Cached tracer reference (attach the tracer to the network
        #: *before* building nodes — see Network's class docstring).
        self._obs = network._tracer
        network.register(node_id, self)

    # ------------------------------------------------------------------
    # messaging helpers
    # ------------------------------------------------------------------
    def send(self, dst: Hashable, kind: str, payload: Any = None, *, values: int = 1) -> bool:
        """Single-hop unicast to a direct neighbour.

        Returns the network receipt: ``False`` when the link layer reports a
        structured delivery failure (dead neighbour, severed link).
        """
        return self.network.send(Message(kind, self.node_id, dst, payload, values))

    def route(self, dst: Hashable, kind: str, payload: Any = None, *, values: int = 1) -> int:
        """Multi-hop unicast along a shortest path.

        Returns the hop count, or ``-1`` on a structured delivery failure
        (dead/unreachable destination after a fault).
        """
        return self.network.route(Message(kind, self.node_id, dst, payload, values))

    def broadcast(self, kind: str, payload: Any = None, *, values: int = 1) -> int:
        """Send a copy to every neighbour; returns the number of copies.

        Routed through :meth:`Network.broadcast_values` so the array
        engine's batched broadcast applies to every protocol node.
        """
        return self.network.broadcast_values(self.node_id, kind, payload, values)

    def set_timer(self, delay: float, callback, *args) -> Event:
        """Schedule *callback* on the shared kernel; returns a cancellable
        event.  The timer is registered under this node's id, so crashing
        the node (``Network.remove_node``) cancels it."""
        if self._obs is not None:
            self._obs.emit(
                self.now,
                "timer.set",
                self.node_id,
                callback=getattr(callback, "__qualname__", None) or repr(callback),
                delay=delay,
            )
        return self.network.schedule_owned(self.node_id, delay, callback, *args)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.network.kernel.now

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Deliver *message* to this endpoint."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            handler = getattr(self, f"handle_{message.kind}", None)
            if handler is None:
                raise NotImplementedError(
                    f"{type(self).__name__} (node {self.node_id!r}) has no handler "
                    f"for message kind {message.kind!r}"
                )
            self._handlers[message.kind] = handler
        handler(message)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id!r})"

"""Base class for protocol node runtimes.

A :class:`ProtocolNode` owns a node id, a reference to the network, and a
feature value; it dispatches incoming messages to ``handle_<kind>`` methods
and provides timer helpers.  ELink nodes, spanning-forest nodes and query
processors all build on it.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.sim.kernel import Event
from repro.sim.messages import Message
from repro.sim.network import Network


class ProtocolNode:
    """A sensor node participating in a message-driven protocol.

    Subclasses implement ``handle_<kind>(message)`` methods for each message
    kind they understand; unknown kinds raise so protocol bugs surface
    immediately instead of being silently dropped.
    """

    def __init__(self, node_id: Hashable, network: Network, feature: np.ndarray):
        self.node_id = node_id
        self.network = network
        self.feature = feature
        self._handlers: dict[str, Any] = {}
        network.register(node_id, self)

    # ------------------------------------------------------------------
    # messaging helpers
    # ------------------------------------------------------------------
    def send(self, dst: Hashable, kind: str, payload: Any = None, *, values: int = 1) -> bool:
        """Single-hop unicast to a direct neighbour.

        Returns the network receipt: ``False`` when the link layer reports a
        structured delivery failure (dead neighbour, severed link).
        """
        return self.network.send(Message(kind, self.node_id, dst, payload, values))

    def route(self, dst: Hashable, kind: str, payload: Any = None, *, values: int = 1) -> int:
        """Multi-hop unicast along a shortest path.

        Returns the hop count, or ``-1`` on a structured delivery failure
        (dead/unreachable destination after a fault).
        """
        return self.network.route(Message(kind, self.node_id, dst, payload, values))

    def broadcast(self, kind: str, payload: Any = None, *, values: int = 1) -> int:
        """Send a copy to every neighbour; returns the number of copies."""
        return self.network.broadcast(
            self.node_id,
            lambda neighbor: Message(kind, self.node_id, neighbor, payload, values),
        )

    def set_timer(self, delay: float, callback, *args) -> Event:
        """Schedule *callback* on the shared kernel; returns a cancellable
        event.  The timer is registered under this node's id, so crashing
        the node (``Network.remove_node``) cancels it."""
        return self.network.schedule_owned(self.node_id, delay, callback, *args)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.network.kernel.now

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Deliver *message* to this endpoint."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            handler = getattr(self, f"handle_{message.kind}", None)
            if handler is None:
                raise NotImplementedError(
                    f"{type(self).__name__} (node {self.node_id!r}) has no handler "
                    f"for message kind {message.kind!r}"
                )
            self._handlers[message.kind] = handler
        handler(message)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id!r})"

"""Struct-of-arrays fast engine (DESIGN.md §8, "Array engine").

:class:`ArrayNetwork` is a drop-in :class:`~repro.sim.network.Network`
subclass tuned for 10⁵–10⁶-node runs.  It keeps the object engine's
delivery *semantics* — same structured failures, same stats totals, same
trace streams — while replacing the three per-message costs that dominate
large runs:

- **CSR adjacency.**  ``_rebuild_adjacency`` builds compressed-sparse-row
  arrays (``indptr``/``indices`` over a node index) instead of a dict of
  per-node tuples + frozensets.  Neighbour tuples and sets are
  *materialized lazily* from the CSR rows the first time a node's row is
  touched (``_CSRRows``), so constructing a million-node network allocates
  two numpy arrays and one index dict, not 2N Python collections.  Row
  order is the CSR order, which is ``graph.adj`` insertion order — the
  ordering the BFS tie-breaking contract depends on.  Fault mutators patch
  affected rows in place (materialize + filter/append), so unpatched rows
  remain valid snapshots of the construction-time topology.

- **Timer-wheel kernel.**  The default kernel is
  :class:`~repro.sim.kernel.TimerWheelKernel`, a calendar queue with
  exact-timestamp FIFO buckets — O(1) push for the dominant repeated-
  timestamp workload.

- **Cohort-batched delivery.**  On the jitter=0/no-loss fast path every
  hop arrives at ``now + hop_delay``, so consecutive sends target the same
  timestamp.  ``_post_delivery`` groups them into one *cohort*: a single
  kernel event that drains the whole same-timestamp message list in one
  callback.  The sealing rule keeps this byte-identical to the heap
  engine's ``(time, seq)`` order: a cohort accepts appends only while the
  kernel has seen **no push of any kind** since the cohort's own event was
  queued (tracked via ``TimerWheelKernel.pushes``).  Any intervening push
  — a timer, a delivery at another timestamp — seals the cohort, and the
  next same-timestamp send starts a fresh one.  Sealing on *every* push is
  conservative (only same-timestamp pushes could actually interleave) but
  makes the ordering argument airtight: cohort members are contiguous in
  sequence order with no kernel entry between them, exactly as the heap
  engine would schedule them.

- **Batched broadcast.**  :meth:`ArrayNetwork.broadcast_values`
  constructs the neighbourhood's identical messages through
  :meth:`Message.batch` (validation hoisted out of the loop) and charges
  :meth:`MessageStats.charge_batch` once — the same totals N ``charge``
  calls would accumulate.

Determinism contract: at a fixed seed, both engines produce identical
protocol state, identical :class:`MessageStats` totals, and identical
trace event streams (``repro.verify``'s replay differ is run across
engines in the equivalence suite).  The only intentional difference is
``kernel.events_executed`` — a cohort is one kernel event for k messages.

Observability fallbacks: with a tracer attached, an energy model, or loss
enabled, the batched broadcast falls back to the reference per-message
path (cohorts still apply), so traced runs emit per-message events in the
reference order.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.sim.kernel import EventKernel, TimerWheelKernel
from repro.sim.messages import (
    _DEFAULT_CATEGORIES,
    CATEGORY_DATA,
    ArenaSpan,
    Message,
    MessageArena,
)
from repro.sim.network import Network

__all__ = ["ArrayNetwork"]


class _CSRRows(dict):
    """``node -> row`` mapping materialized on demand from CSR storage.

    Behaves like the eager dict the object engine precomputes: item access
    and ``in``/``get`` consult the owning network's CSR index for rows not
    yet materialized.  Mutated rows are stored directly (dict assignment),
    shadowing the CSR snapshot from then on.
    """

    __slots__ = ("_net", "_cast")

    def __init__(self, net: "ArrayNetwork", cast):
        super().__init__()
        self._net = net
        self._cast = cast

    def __missing__(self, key):
        row = self._cast(self._net._csr_row(key))
        self[key] = row
        return row

    def __contains__(self, key):
        return dict.__contains__(self, key) or self._net._csr_has_row(key)

    def get(self, key, default=None):
        if dict.__contains__(self, key):
            return dict.__getitem__(self, key)
        if self._net._csr_has_row(key):
            return self[key]
        return default


class ArrayNetwork(Network):
    """CSR-adjacency, cohort-batched engine.  See module docstring.

    Build via ``Network(graph, engine="array")`` (or ``REPRO_ENGINE=array``)
    rather than instantiating directly, so call sites stay engine-agnostic.
    """

    engine = "array"

    def __init__(self, graph, kernel: EventKernel | None = None, **kwargs):
        super().__init__(graph, kernel, **kwargs)
        #: Open delivery cohorts: time -> (message list, kernel.pushes at
        #: the moment the cohort's kernel event was queued).
        self._cohorts: dict[float, tuple[list, int]] = {}
        #: Cohort batching needs the fast delivery regime *and* the wheel's
        #: push counter; with a plain heap kernel the engine degrades to
        #: per-message posts (still CSR-backed).
        self._batch = self._fast and isinstance(self.kernel, TimerWheelKernel)
        #: node -> bound ``handle_message``, so the cohort drain skips one
        #: attribute lookup per delivered message.
        self._dispatch: dict[Hashable, callable] = {}
        #: Folded guard for the batched broadcast: everything static that
        #: forces the reference path (no wheel, tracer, energy model).
        #: ``_mutated`` stays a separate per-call check since faults flip
        #: it mid-run.
        self._bcast_ok = self._batch and self._tracer is None and self.energy is None
        #: Index-based message rows for in-flight broadcasts; ``Message``
        #: objects are materialized lazily at delivery (or for a tracer /
        #: structured drop), never for rows a vectorised consumer drains as
        #: arrays.  Reference-counted by open spans so the arena can be
        #: recycled between delivery rounds.
        self._arena = MessageArena(self._node_list)
        self._arena_refs = 0

    def register(self, node_id, handler) -> None:
        """Register *handler* and cache its bound dispatch method."""
        super().register(node_id, handler)
        self._dispatch[node_id] = handler.handle_message

    @Network.tracer.setter
    def tracer(self, tracer) -> None:
        """Attach *tracer*, re-folding the batched-broadcast guard."""
        Network.tracer.fset(self, tracer)
        self._bcast_ok = self._batch and tracer is None and self.energy is None

    @staticmethod
    def _default_kernel() -> EventKernel:
        return TimerWheelKernel()

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def _rebuild_adjacency(self) -> None:
        graph = self.graph
        nodes = list(graph.nodes)
        index = {v: i for i, v in enumerate(nodes)}
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        indices = np.empty(2 * graph.number_of_edges(), dtype=np.int64)
        pos = 0
        for i, (_, nbrs) in enumerate(graph.adj.items()):
            for w in nbrs:
                indices[pos] = index[w]
                pos += 1
            indptr[i + 1] = pos
        self._node_list = nodes
        self._node_index = index
        self._indptr = indptr
        self._indices = indices
        #: Liveness mask over the CSR index space (numpy node state; fault
        #: mutators keep it in sync with ``dead_nodes``).
        self._alive = np.ones(len(nodes), dtype=bool)
        self._removed_rows: set[Hashable] = set()
        self._adj = _CSRRows(self, tuple)
        self._adj_sets = _CSRRows(self, frozenset)
        # A rebuild renumbers the CSR index space; pending arena rows (if
        # any) keep materializing against the node list they were built on.
        if getattr(self, "_arena", None) is not None:
            self._arena = MessageArena(nodes)
            self._arena_refs = 0

    def _csr_row(self, key) -> tuple:
        """Materialize *key*'s neighbour tuple from the CSR snapshot."""
        i = self._node_index[key]  # KeyError for unknown nodes, as eager dicts give
        if key in self._removed_rows:
            raise KeyError(key)
        start, end = self._indptr[i], self._indptr[i + 1]
        return tuple(map(self._node_list.__getitem__, self._indices[start:end].tolist()))

    def _csr_has_row(self, key) -> bool:
        return key in self._node_index and key not in self._removed_rows

    def _adjacency_drop_node(self, node_id, neighbours: Iterable[Hashable]) -> None:
        self._removed_rows.add(node_id)
        idx = self._node_index.get(node_id)
        if idx is not None:
            self._alive[idx] = False
        adj = self._adj
        adj_sets = self._adj_sets
        for nbr in neighbours:
            row = tuple(x for x in adj[nbr] if x != node_id)
            adj[nbr] = row
            adj_sets[nbr] = frozenset(row)
        # Drop any materialized copies; the _removed_rows mark stops the
        # CSR snapshot from resurrecting the row on later access.
        adj.pop(node_id, None)
        adj_sets.pop(node_id, None)

    def _adjacency_add_node(self, node_id) -> None:
        self._removed_rows.discard(node_id)
        idx = self._node_index.get(node_id)
        if idx is not None:
            self._alive[idx] = True
        super()._adjacency_add_node(node_id)

    # ------------------------------------------------------------------
    # cohort-batched delivery
    # ------------------------------------------------------------------
    def _post_delivery(self, delay: float, message: Message) -> None:
        kernel = self.kernel
        if not self._batch:
            kernel.post(delay, self._deliver, message)
            return
        time = kernel.now + delay
        entry = self._cohorts.get(time)
        if entry is not None and entry[1] == kernel.pushes:
            entry[0].append(message)
            return
        batch = [message]
        kernel.post(delay, self._deliver_cohort, time, batch)
        self._cohorts[time] = (batch, kernel.pushes)

    def _deliver_cohort(self, time: float, batch: list) -> None:
        entry = self._cohorts.get(time)
        if entry is not None and entry[0] is batch:
            del self._cohorts[time]
        if self._tracer is not None:
            deliver = self._deliver
            for item in batch:
                if type(item) is ArenaSpan:
                    arena = item.arena
                    for row in range(item.start, item.stop):
                        deliver(arena.materialize(row))
                    self._span_drained(item)
                else:
                    deliver(item)
            return
        dispatch = self._dispatch
        dead = self.dead_nodes
        for item in batch:
            if type(item) is ArenaSpan:
                arena = item.arena
                node_list = arena.node_list
                dst_col = arena.dst_col
                materialize = arena.materialize
                for row in range(item.start, item.stop):
                    dst = node_list[dst_col[row]]
                    if dead and dst in dead:
                        # Only a structured drop needs the object; live
                        # recipients get theirs materialized one handler
                        # call away, dead ones here for the drop record.
                        self._drop(materialize(row), "dead_destination")
                        continue
                    try:
                        handle = dispatch[dst]
                    except KeyError:
                        handle = self.handler(dst).handle_message  # canonical error
                    handle(materialize(row))
                self._span_drained(item)
                continue
            message = item
            # dead_nodes is re-checked per message: a handler running
            # earlier in this cohort may have crashed a later recipient,
            # and the object engine's per-event delivery would see that.
            if dead and message.dst in dead:
                self._drop(message, "dead_destination")
                continue
            try:
                handle = dispatch[message.dst]
            except KeyError:
                handle = self.handler(message.dst).handle_message  # canonical error
            handle(message)

    def _span_drained(self, span: ArenaSpan) -> None:
        """Release *span*'s arena reference; recycle the arena when idle."""
        if span.arena is not self._arena:
            return  # superseded by a CSR rebuild; freed with its last span
        self._arena_refs -= 1
        if self._arena_refs == 0:
            self._arena.clear()

    def broadcast_values(
        self,
        src,
        kind: str,
        payload=None,
        values: int = 1,
        category: str = "",
    ) -> int:
        """Batched homogeneous broadcast: one stats charge, one cohort.

        Falls back to the reference per-message path whenever any
        per-message observer could tell the difference (faults pending,
        tracer attached, energy model, loss/jitter).
        """
        if self._mutated or not self._bcast_ok:
            return Network.broadcast_values(self, src, kind, payload, values, category)
        # Neighbour indices straight from the CSR snapshot (legal while
        # unmutated): no node-id tuple is ever materialized on this path.
        i = self._node_index[src]
        indptr = self._indptr
        start, end = indptr[i], indptr[i + 1]
        count = int(end - start)
        if count == 0:
            return 0
        if values < 1:
            raise ValueError(f"message must carry at least one value, got {values}")
        if not category:
            category = _DEFAULT_CATEGORIES.get(kind, CATEGORY_DATA)
        # Inlined MessageStats.charge_batch (count/values validated above)
        # — the call itself is measurable at this call rate.
        stats = self.stats
        total = count * values
        stats.packets_by_kind[kind] += count
        stats.values_by_kind[kind] += total
        stats.packets_by_category[category] += count
        stats.values_by_category[category] += total
        stats._total_packets += count
        stats._total_values += total
        arena = self._arena
        span = ArenaSpan(
            arena,
            *arena.append_block(
                arena.kind_id(kind, category),
                i,
                self._indices[start:end].tolist(),
                arena.payload_ref(payload),
                values,
            ),
        )
        self._arena_refs += 1
        kernel = self.kernel
        time = kernel.now + self.hop_delay
        cohorts = self._cohorts
        entry = cohorts.get(time)
        if entry is not None and entry[1] == kernel.pushes:
            # Open cohort: the span rides along with any Message entries.
            entry[0].append(span)
        else:
            batch = [span]
            kernel.post(self.hop_delay, self._deliver_cohort, time, batch)
            cohorts[time] = (batch, kernel.pushes)
        return count

    def __repr__(self) -> str:
        return (
            f"ArrayNetwork(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, t={self.kernel.now:.2f})"
        )

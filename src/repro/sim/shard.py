"""Sharded simulation engine with deterministic epoch barriers.

:class:`ShardedNetwork` partitions the communication graph along quadtree
cell boundaries into K spatial shards and executes each shard's protocol
handlers in its own worker — in-process (``shard_mode="inline"``) or in a
forked child process (``shard_mode="fork"``).  Cross-shard effects are
exchanged only at deterministic **epoch barriers**, and the merged run is
bit-identical to the single-process engines: same canonical trace stream,
same clustering, same :class:`~repro.sim.stats.MessageStats` totals
(certified by ``repro verify --replay --sharded``).

Why one hop of lookahead is safe
--------------------------------
The engine exploits the simulator's *lookahead invariant*: every event
scheduled at runtime lands at least one ``hop_delay`` after the event
that scheduled it.  Message deliveries take ``hops * hop_delay`` (and a
message to self still costs one ``hop_delay`` of processing time);
protocol timers are multiples of ``ack_window * max_hop_delay`` with
``ack_window > 2`` enforced by :class:`~repro.core.elink.ELinkConfig`.
Zero-delay scheduling happens only *before* ``run()``.  Therefore once
the earliest pending time ``t0`` is known, **every** event in the window
``[t0, t0 + hop_delay)`` is already queued — nothing executed inside the
window can add to it.  A defensive guard enforces this at runtime: a
worker-produced effect that would land inside the current window raises
instead of silently diverging.

How exact serial order is preserved
-----------------------------------
The coordinator keeps the *only* total order.  Pre-run kernel entries are
drained into a private calendar queue in exact ``(time, seq)`` order.
Each epoch pops one window and classifies its entries:

- **fault entries** (:class:`~repro.sim.faults.FaultInjector` callbacks)
  execute on the coordinator, against the real network.  They split the
  window into *segments*, because a fault mutates topology and cancels
  timers for everything ordered after it.
- every other entry belongs to exactly one shard and is dispatched to
  that shard's worker.  A segment's entries are batched per shard and
  executed in parallel; each worker returns one columnar *op block* per
  batch — typed arrays of effect descriptors (new messages, new timers,
  repair notices, completion callbacks) plus per-entry offsets and the
  buffered trace events — instead of a Python tuple per effect, so a
  million-effect epoch ships a handful of flat buffers across the pipe.

The coordinator then walks the segment **in original serial order**,
re-emitting each entry's trace events into the real tracer and replaying
its descriptors into the calendar queue.  Because descriptors are pushed
in walk order and calendar buckets are FIFO, the future order equals the
serial kernel's ``(time, seq)`` order exactly.  Long segments are cut
into fixed-size chunks and *pipelined*: chunk ``c+1`` is submitted to the
workers before chunk ``c`` is replayed, overlapping worker execution with
the coordinator's replay.  This is sound because a segment's dispatch
batches are a pure function of its (fixed) entry list — replay only
pushes *future* events (the lookahead guard keeps them past the window
end), records repairs and runs completion callbacks — and each shard's
pool executes submissions FIFO, so worker state still advances in exact
batch order.

Message payloads avoid the coordinator where possible: an intra-shard
message stays in its worker's outbox keyed by an integer reference (only
the reference crosses the process boundary), while a cross-shard
("boundary") message ships by value so the destination shard can deliver
it.  This keeps the dominant traffic shard-local in fork mode.

Fault handling mirrors the serial engine bit for bit: the coordinator
executes ``FaultInjector._apply`` itself (emitting the real
``fault.inject`` / ``node.crash`` / ``timer.cancel`` events), while the
overridden mutators synchronously broadcast each topology mutation to
every worker so the shard-local graphs never drift.  Timer-cancellation
counts sum the coordinator-held initial timers with a synchronous
per-owner count from the owning shard.

Observability: with a tracer attached the coordinator additionally emits
``shard.epoch`` (window start, horizon, entry count), ``shard.boundary``
(cross-shard messages replayed in the window) and ``shard.queues``
(per-shard dispatched entry counts) — these are coordinator-only events
and are filtered out by the sharded replay differ
(:func:`repro.verify.replay.replay_sharded_check`).

Unsupported (fail loudly, never silently diverge): jitter, lossy links,
energy models, coordinator-side scheduling mid-run, and more than one
``run()`` per instance.  Handlers must also not rely on mutating a
received payload object in place being visible to the *sender* — shards
do not share payload identity across the boundary.
"""

from __future__ import annotations

import copy
import gc
import heapq
import multiprocessing
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.sim.faults import FaultInjector
from repro.sim.kernel import Event, EventKernel, TimerWheelKernel, _callback_name
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.stats import MessageStats

#: Handler attributes that are re-bound per worker (or are immutable
#: run-wide bindings) and therefore excluded from the end-of-run state
#: gather — everything else in a handler's ``__dict__`` is copied back
#: onto the coordinator's original handler.
_STATE_SKIP = frozenset(
    {
        # per-worker environment rebindings
        "network",
        "_obs",
        "_handlers",
        "_fault_injector",
        "on_protocol_done",
        # identity / immutable run-wide bindings (identical on the original)
        "node_id",
        "feature",
        "metric",
        "config",
        "_child_subtree_max",
        "_quad_level_of",
        "_quad_children_of",
        "_cell_fallbacks",
        "_phase_patience",
    }
)

#: Immutable scalar types eligible for the gather's changed-only diff
#: (anything else could have been mutated in place and always ships).
_SCALAR_TYPES = (int, float, bool, str, bytes, type(None))

#: Baseline marker: the attribute held an empty container at clone time.
_EMPTY = object()

#: Container types whose emptiness the gather diff may trust.
_CONTAINER_TYPES = (dict, set, list)


def _state_baseline(state: Mapping[str, Any]) -> dict[str, Any]:
    """The clone-time comparison baseline for one handler's ``__dict__``.

    Captures exactly the values whose equality at finish time *proves*
    the coordinator's original still matches: immutable scalars, tuples
    of immutable scalars, and the emptiness of empty containers.  An
    attribute outside these classes never enters the baseline and
    therefore always ships back.
    """
    baseline: dict[str, Any] = {}
    for key, value in state.items():
        if key in _STATE_SKIP:
            continue
        kind = type(value)
        if kind in _SCALAR_TYPES:
            baseline[key] = value
        elif kind is tuple and all(type(item) in _SCALAR_TYPES for item in value):
            baseline[key] = value
        elif kind in _CONTAINER_TYPES and not value:
            baseline[key] = _EMPTY
        elif kind is np.ndarray and value.size <= 16:
            # Copied, so in-place writes are detected by the comparison.
            baseline[key] = value.copy()
    return baseline


def _state_unchanged(value: Any, base: Any) -> bool:
    """True when *value* provably equals its clone-time baseline entry."""
    if base is _EMPTY:
        return type(value) in _CONTAINER_TYPES and not value
    if type(value) is not type(base):
        return False
    if type(value) is np.ndarray:
        return (
            value.shape == base.shape
            and value.dtype == base.dtype
            and bool((value == base).all())
        )
    if type(value) is tuple and not all(type(item) in _SCALAR_TYPES for item in value):
        return False
    return value == base


# ----------------------------------------------------------------------
# spatial shard plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of the graph's nodes into K shards.

    Built along quadtree cell boundaries when a decomposition is
    available (:meth:`from_quadtree`), so shard boundaries follow the
    paper's spatial hierarchy and most protocol traffic — which is
    cell-local by construction — stays intra-shard.  Falls back to
    insertion-order contiguous blocks otherwise (:meth:`from_graph`).
    """

    #: Number of shards (some may be empty when K exceeds the cell count).
    shards: int
    #: node id -> shard index, for every node in the graph.
    owner: Mapping[Hashable, int]
    #: Per-shard node tuples (``members[s]`` lists shard *s* in order).
    members: tuple[tuple[Hashable, ...], ...]
    #: Quadtree level the cells were taken from (None for the fallback).
    level: int | None

    @classmethod
    def from_quadtree(cls, quadtree, shards: int) -> "ShardPlan":
        """Partition along the shallowest quadtree level with >= K cells.

        Cells at any level partition all nodes, so packing whole cells
        into shards (largest-first onto the lightest shard — LPT greedy,
        deterministic tie-breaks) yields a balanced cover with spatial
        locality.  If even the deepest level has fewer nonempty cells
        than K, the deepest level is used and surplus shards stay empty.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        levels = quadtree._cells_by_level
        chosen = len(levels) - 1
        for level, cells in enumerate(levels):
            if sum(1 for cell in cells if cell.members) >= shards:
                chosen = level
                break
        cells = [cell for cell in levels[chosen] if cell.members]
        order = sorted(range(len(cells)), key=lambda i: (-len(cells[i].members), i))
        loads = [0] * shards
        packed: list[list[Hashable]] = [[] for _ in range(shards)]
        for index in order:
            lightest = min(range(shards), key=lambda s: (loads[s], s))
            packed[lightest].extend(cells[index].members)
            loads[lightest] += len(cells[index].members)
        return cls._from_members(shards, packed, chosen)

    @classmethod
    def from_graph(cls, graph, shards: int) -> "ShardPlan":
        """Fallback partition: contiguous blocks in node insertion order."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        nodes = list(graph.nodes)
        base, extra = divmod(len(nodes), shards)
        packed = []
        start = 0
        for s in range(shards):
            size = base + (1 if s < extra else 0)
            packed.append(nodes[start : start + size])
            start += size
        return cls._from_members(shards, packed, None)

    @classmethod
    def _from_members(
        cls, shards: int, packed: Sequence[Sequence[Hashable]], level: int | None
    ) -> "ShardPlan":
        owner: dict[Hashable, int] = {}
        for s, nodes in enumerate(packed):
            for node in nodes:
                if node in owner:
                    raise ValueError(f"node {node!r} assigned to two shards")
                owner[node] = s
        return cls(shards, owner, tuple(tuple(nodes) for nodes in packed), level)

    def shard_of(self, node: Hashable) -> int:
        """The shard index owning *node*."""
        return self.owner[node]

    def validate_cover(self, graph) -> None:
        """Raise unless the plan assigns every graph node to a shard."""
        missing = [node for node in graph.nodes if node not in self.owner]
        if missing:
            raise ValueError(
                f"shard plan does not cover {len(missing)} graph node(s), "
                f"e.g. {missing[:3]!r}"
            )


# ----------------------------------------------------------------------
# worker-side substrate
# ----------------------------------------------------------------------
class _StubKernel:
    """A clock, nothing more — the worker-side stand-in for the kernel.

    Workers never run an event loop of their own: the coordinator owns
    the only schedule, and all worker-side scheduling is intercepted by
    :class:`_ShardLocalNetwork`.  Deliberately *not* an
    :class:`~repro.sim.kernel.EventKernel` subclass, so the array
    engine's ``isinstance(kernel, TimerWheelKernel)`` batching predicate
    can never be satisfied by accident.  Any direct ``schedule``/``post``
    call is a protocol reaching around the network layer — unsupported
    under sharding, so it raises.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.tracer = None

    def _unsupported(self, *_args, **_kwargs):
        raise RuntimeError(
            "direct kernel scheduling inside a shard worker is unsupported; "
            "protocols must schedule through the network layer"
        )

    schedule = _unsupported
    schedule_at = _unsupported
    post = _unsupported
    run = _unsupported


class _BufferTracer:
    """Per-entry trace buffer with the :class:`~repro.obs.trace.Tracer`
    emit signature.

    Workers emit into this buffer; the coordinator re-emits each entry's
    buffered events into the real tracer at the entry's serial position,
    so the merged stream is byte-identical to the single-process run.
    Events are kept as plain ``(time, type, node, data)`` tuples — cheap
    to pickle in fork mode.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple[float, str, Hashable, dict]] = []

    def emit(self, time: float, type: str, node: Hashable = None, **data: Any) -> None:
        """Buffer one trace event (same signature as ``Tracer.emit``)."""
        self.events.append((time, type, node, data))


#: Effect-descriptor codes — one byte per op in an op block's ``tags``
#: column.  The delay/ref columns always advance with the op; the aux
#: column advances only for codes that need an object payload.
_OP_LOCAL_MSG = ord("m")  # intra-shard message: delay + outbox ref
_OP_CROSS_MSG = ord("M")  # cross-shard message: delay + Message in aux
_OP_TIMER = ord("t")  # worker-held timer: delay + timer ref
_OP_REPAIR = ord("r")  # repair notice: (kind, dead, by) in aux
_OP_DONE = ord("d")  # protocol completion: (node, args) in aux


class _WorkerInjector:
    """Worker-side stand-in for the handler's ``_fault_injector``.

    Protocol handlers only ever call :meth:`note_repair` on it; the real
    bookkeeping (``repairs`` / ``repair_times``) lives on the
    coordinator's injector and is replayed from the emitted descriptor,
    while the ``repair.note`` trace event is buffered here so it lands at
    the exact serial position.
    """

    __slots__ = ("_worker",)

    def __init__(self, worker: "ShardWorker") -> None:
        self._worker = worker

    def note_repair(self, kind: str, dead: Hashable, by: Hashable) -> None:
        """Record a protocol-layer repair (mirrors ``FaultInjector``)."""
        worker = self._worker
        worker.emit_op(_OP_REPAIR, aux=(kind, dead, by))
        if worker.buffer is not None:
            worker.buffer.emit(
                worker.kernel.now, "repair.note", by, kind=kind, dead=dead
            )


class _DoneRelay:
    """Replaces a handler's ``on_protocol_done`` inside a worker.

    Buffers the completion as a descriptor; the coordinator invokes the
    *original* callback (e.g. ``protocol_done_at.append``) at the entry's
    serial position.
    """

    __slots__ = ("_worker", "_node")

    def __init__(self, worker: "ShardWorker", node: Hashable) -> None:
        self._worker = worker
        self._node = node

    def __call__(self, *args: Any) -> None:
        self._worker.emit_op(_OP_DONE, aux=(self._node, args))


class _ShardLocalNetwork(Network):
    """The network a shard's handler copies talk to.

    A plain object-engine :class:`Network` over a full graph copy, with
    the three scheduling surfaces replaced by descriptor emission:

    - :meth:`_post_delivery` — instead of posting to a kernel, stash an
      intra-shard message in the worker outbox (descriptor carries only
      an integer reference) or ship a cross-shard message by value.
    - :meth:`schedule_owned` — allocate a real :class:`Event` in the
      worker's timer registry (so crash-time cancellation and counting
      work locally) and emit a timer descriptor.
    - :meth:`run` — never valid worker-side.

    Everything else — adjacency checks, structured drops, routing BFS,
    stats accounting, delivery dispatch, topology mutators — is the
    inherited reference implementation, so worker behaviour is the
    serial engine's behaviour by construction.

    *adopt* (fork mode only) hands the worker the coordinator network's
    own graph and prebuilt adjacency structures instead of copying and
    rebuilding them: after the fork every inherited object is private to
    the child via copy-on-write, so adopting is isolation-safe and skips
    the O(N+E) per-child startup cost that dominates at 10^4+ nodes.
    """

    def __init__(self, worker: "ShardWorker", graph, adopt: Network | None = None, **kwargs: Any) -> None:
        self._worker = worker
        self._adopt = adopt
        super().__init__(graph, kernel=_StubKernel(), **kwargs)

    def _rebuild_adjacency(self) -> None:
        """Adopt the coordinator's adjacency in fork children, else build."""
        adopt = getattr(self, "_adopt", None)
        if adopt is not None:
            self._adj = adopt._adj
            self._adj_sets = adopt._adj_sets
        else:
            super()._rebuild_adjacency()

    def _post_delivery(self, delay: float, message: Message) -> None:
        """Emit a message descriptor instead of scheduling locally."""
        worker = self._worker
        if worker.plan.owner[message.dst] == worker.shard_id:
            worker.emit_op(
                _OP_LOCAL_MSG, delay=delay, ref=worker.stash_message(message)
            )
        else:
            worker.emit_op(_OP_CROSS_MSG, delay=delay, aux=message)

    def schedule_owned(self, owner: Hashable, delay: float, callback, *args) -> Event:
        """Register an owned timer locally and emit a timer descriptor."""
        worker = self._worker
        event = Event(self.kernel.now + delay, callback, args)
        event.owner = owner
        bucket = self._owned_timers.setdefault(owner, [])
        bucket.append(event)
        if len(bucket) > 64:
            self._owned_timers[owner] = [
                ev for ev in bucket if not ev.fired and not ev.cancelled
            ]
        worker.emit_op(_OP_TIMER, delay=delay, ref=worker.stash_timer(event))
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Worker networks never run a kernel loop."""
        raise RuntimeError("shard-local networks are driven by the coordinator")


class ShardWorker:
    """One shard's execution context: handler copies over a local network.

    Built from the coordinator's pre-run state — directly in inline mode,
    from fork-inherited memory in fork mode.  Handler copies are shallow
    (:func:`copy.copy`) with their environment re-bound: ``network`` to
    the shard-local network, ``_obs`` to the per-entry trace buffer,
    ``_fault_injector`` to a descriptor-emitting stub, memoized
    ``_handlers`` reset (the cached bound methods point at the original
    object), and ``on_protocol_done`` wrapped in a :class:`_DoneRelay`.
    """

    def __init__(
        self,
        network: "ShardedNetwork",
        plan: ShardPlan,
        shard_id: int,
        *,
        adopt_substrate: bool = False,
    ):
        self.plan = plan
        self.shard_id = shard_id
        self.buffer = _BufferTracer() if network._tracer is not None else None
        # Columnar op accumulators for the batch currently executing —
        # see the _OP_* codes and ShardWorker.execute for the layout.
        self.op_tags = bytearray()
        self.op_delays = array("d")
        self.op_refs = array("q")
        self.op_aux: list[Any] = []
        self._outbox: dict[int, Message] = {}
        self._timers: dict[int, Event] = {}
        self._next_ref = 0
        self.local = _ShardLocalNetwork(
            self,
            # Inline workers copy the graph (they share the coordinator's
            # address space and must not see its fault mutations twice);
            # fork children adopt the inherited one — see _ShardLocalNetwork.
            network.graph if adopt_substrate else network.graph.copy(),
            adopt=network if adopt_substrate else None,
            hop_delay=network.hop_delay,
            path_cache_size=network._path_cache_size,
            tracer=self.buffer,
        )
        self.kernel = self.local.kernel
        self._baselines: dict[Hashable, dict] = {}
        injector_stub = _WorkerInjector(self)
        for node in plan.members[shard_id]:
            original = network._handlers.get(node)
            if original is None:
                continue
            clone = copy.copy(original)
            clone.network = self.local
            clone._handlers = {}
            clone._obs = self.buffer
            if getattr(clone, "_fault_injector", None) is not None:
                clone._fault_injector = injector_stub
            if getattr(clone, "on_protocol_done", None) is not None:
                clone.on_protocol_done = _DoneRelay(self, node)
            self.local.register(node, clone)
            self._baselines[node] = _state_baseline(clone.__dict__)

    # -- effect descriptors ---------------------------------------------
    def emit_op(
        self, code: int, *, delay: float = 0.0, ref: int = -1, aux: Any = None
    ) -> None:
        """Append one effect descriptor to the current op block.

        Every op consumes a row of the tag/delay/ref columns; only ops
        whose code carries an object payload (``M``/``r``/``d``) append
        to the aux column, so the replay walk can advance a single aux
        cursor per entry.
        """
        self.op_tags.append(code)
        self.op_delays.append(delay)
        self.op_refs.append(ref)
        if aux is not None:
            self.op_aux.append(aux)

    # -- descriptor references -----------------------------------------
    def stash_message(self, message: Message) -> int:
        """Hold an intra-shard message; the descriptor carries the ref."""
        ref = self._next_ref
        self._next_ref += 1
        self._outbox[ref] = message
        return ref

    def stash_timer(self, event: Event) -> int:
        """Register a worker-held timer event under an integer ref."""
        ref = self._next_ref
        self._next_ref += 1
        self._timers[ref] = event
        return ref

    # -- entry execution -------------------------------------------------
    def execute(self, batch: list[tuple]) -> tuple:
        """Execute a segment's dispatch items for this shard, in order.

        Returns one columnar *op block* for the whole batch::

            (op_offsets, aux_offsets, tags, delays, refs, aux, events)

        ``tags``/``delays``/``refs`` hold one row per effect descriptor
        (codes in ``_OP_*``); ``aux`` holds the object payloads for the
        codes that need one; ``op_offsets``/``aux_offsets`` (length
        ``len(batch) + 1``) delimit each item's slice of those columns so
        the coordinator can replay any item without rescanning.
        ``events`` is a per-item list of buffered trace events, or
        ``None`` when the coordinator is untraced.
        """
        buffer = self.buffer
        kernel = self.kernel
        local = self.local
        self.op_tags = bytearray()
        self.op_delays = array("d")
        self.op_refs = array("q")
        self.op_aux = []
        op_offsets = array("q", [0])
        aux_offsets = array("q", [0])
        events: list[list] | None = [] if buffer is not None else None
        for item in batch:
            if buffer is not None:
                buffer.events = []
            tag = item[0]
            kernel.now = item[1]
            if tag == "timer":
                event = self._timers.pop(item[2])
                if event.cancelled:
                    if buffer is not None:
                        buffer.emit(
                            item[1],
                            "timer.skip",
                            event.owner,
                            callback=_callback_name(event.callback),
                        )
                else:
                    event.fired = True
                    if buffer is not None:
                        buffer.emit(
                            item[1],
                            "timer.fire",
                            event.owner,
                            callback=_callback_name(event.callback),
                        )
                    event.callback(*event.args)
            elif tag == "start":
                _tag, _time, owner, node, method, args, fire = item
                bound = getattr(local._handlers[node], method)
                if fire and buffer is not None:
                    buffer.emit(
                        item[1], "timer.fire", owner, callback=_callback_name(bound)
                    )
                bound(*args)
            elif tag == "local":
                local._deliver(self._outbox.pop(item[2]))
            else:  # "msg": cross-shard delivery by value
                local._deliver(item[2])
            op_offsets.append(len(self.op_tags))
            aux_offsets.append(len(self.op_aux))
            if events is not None:
                events.append(buffer.events)
        return (
            op_offsets,
            aux_offsets,
            self.op_tags,
            self.op_delays,
            self.op_refs,
            self.op_aux,
            events,
        )

    # -- control plane ---------------------------------------------------
    def control(self, record: tuple) -> Any:
        """Synchronous control RPC: cancel / mutate / finish."""
        tag = record[0]
        if tag == "cancel":
            # Counting and cancellation only; the coordinator emits the
            # single merged timer.cancel event.
            saved = self.local._tracer
            self.local._tracer = None
            try:
                return self.local.cancel_owned(record[1])
            finally:
                self.local._tracer = saved
        if tag == "mutate":
            # Apply a topology mutation silently: the coordinator already
            # emitted the real node.crash / link.down / ... event.
            _tag, method, args = record
            saved = self.local._tracer
            self.local._tracer = None
            try:
                getattr(self.local, method)(*args)
            finally:
                self.local._tracer = saved
            return None
        if tag == "finish":
            return self.finish()
        raise ValueError(f"unknown shard control record {record!r}")

    def finish(self) -> tuple[dict, MessageStats]:
        """Gather final handler state and the shard's stats partial.

        Only *changed* state ships back: an attribute that is still the
        immutable scalar it held at clone time is identical on the
        coordinator's original handler, so sending it would be pure
        pickle volume.  Mutable values always ship — in-place mutation
        cannot be detected against a shallow baseline.
        """
        states = {}
        for node, handler in self.local._handlers.items():
            baseline = self._baselines[node]
            state = {}
            for key, value in handler.__dict__.items():
                if key in _STATE_SKIP:
                    continue
                if key in baseline and _state_unchanged(value, baseline[key]):
                    continue
                state[key] = value
            states[node] = state
        return states, self.local.stats


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class _InlineTransport:
    """All shard workers in the coordinator process (no parallelism).

    The determinism reference: identical code paths to fork mode minus
    the pickling, so tests can certify bit-identity quickly and the fork
    transport only adds transport, never semantics.
    """

    def __init__(self, network: "ShardedNetwork", plan: ShardPlan) -> None:
        self.workers = [
            ShardWorker(network, plan, shard) for shard in range(plan.shards)
        ]

    def execute_async(self, batches: dict[int, list]) -> dict[int, tuple]:
        """Run each shard's batch eagerly; the "handle" is the result.

        In-process workers have no concurrency to overlap with, so the
        async surface degenerates to immediate execution — identical
        semantics to fork mode's submit-then-wait, minus the pipe.
        """
        return {
            shard: self.workers[shard].execute(batch)
            for shard, batch in sorted(batches.items())
        }

    def wait(self, handle: dict[int, tuple]) -> dict[int, tuple]:
        """Resolve an :meth:`execute_async` handle (already computed)."""
        return handle

    def execute(self, batches: dict[int, list]) -> dict[int, tuple]:
        """Run each shard's batch; returns per-shard op blocks."""
        return self.wait(self.execute_async(batches))

    def control_one(self, shard: int, record: tuple) -> Any:
        """Synchronous control call against one shard."""
        return self.workers[shard].control(record)

    def broadcast(self, record: tuple) -> list:
        """Synchronous control call against every shard, in shard order."""
        return [worker.control(record) for worker in self.workers]

    def close(self) -> None:
        """Nothing to tear down in-process."""


#: Fork-mode bootstrap: set in the parent immediately before the worker
#: processes are forked, inherited copy-on-write by the children, then
#: cleared.  (Module globals survive the fork; nothing is pickled.)
_BOOTSTRAP: tuple["ShardedNetwork", ShardPlan] | None = None

#: The child process's ShardWorker, built once by :func:`_fork_init`.
_WORKER: ShardWorker | None = None


def _fork_init(shard_id: int) -> None:
    """Child-process initializer: build this shard's worker from the
    fork-inherited coordinator state."""
    global _WORKER
    network, plan = _BOOTSTRAP
    _WORKER = ShardWorker(network, plan, shard_id, adopt_substrate=True)
    # The child inherits the coordinator's entire heap.  Freeze it into
    # the permanent generation so generational collections never re-scan
    # those millions of inherited objects (each scan also writes refcount
    # bits, faulting their copy-on-write pages); the collector keeps
    # running over per-epoch garbage only.
    gc.freeze()


def _fork_ready() -> bool:
    """No-op task used to force worker spawn while the bootstrap is set."""
    return _WORKER is not None


def _fork_execute(batch: list[tuple]) -> tuple:
    """Child-process task: execute a segment batch, return its op block."""
    return _WORKER.execute(batch)


def _fork_control(record: tuple) -> Any:
    """Child-process task: run a control RPC."""
    return _WORKER.control(record)


class _ForkTransport:
    """One single-worker fork-context executor per shard.

    ``max_workers=1`` per shard guarantees FIFO execution of that
    shard's submissions; the fork start method hands each child the
    coordinator's pre-run state through inherited memory, so only small
    descriptors and boundary messages ever cross a pipe.
    """

    def __init__(self, network: "ShardedNetwork", plan: ShardPlan) -> None:
        global _BOOTSTRAP
        from repro.perf.pool import create_shard_executors

        _BOOTSTRAP = (network, plan)
        try:
            self.pools = create_shard_executors(plan.shards, initializer=_fork_init)
            # Force every child to fork NOW, while the bootstrap global is
            # still populated (executors spawn workers lazily on first
            # submit).
            for ready in [pool.submit(_fork_ready) for pool in self.pools]:
                if not ready.result():
                    raise RuntimeError("shard worker failed to initialize")
        finally:
            _BOOTSTRAP = None

    def execute_async(self, batches: dict[int, list]) -> dict[int, Any]:
        """Submit each shard's batch without blocking; returns futures.

        Each pool is single-worker, so a shard's submissions execute in
        FIFO order — the coordinator may submit chunk ``c+1`` before it
        has consumed chunk ``c``'s results.
        """
        return {
            shard: self.pools[shard].submit(_fork_execute, batch)
            for shard, batch in sorted(batches.items())
        }

    def wait(self, handle: dict[int, Any]) -> dict[int, tuple]:
        """Gather an :meth:`execute_async` handle's results in shard order."""
        return {shard: future.result() for shard, future in handle.items()}

    def execute(self, batches: dict[int, list]) -> dict[int, tuple]:
        """Run each shard's batch in parallel; gather in shard order."""
        return self.wait(self.execute_async(batches))

    def control_one(self, shard: int, record: tuple) -> Any:
        """Synchronous control call against one shard."""
        return self.pools[shard].submit(_fork_control, record).result()

    def broadcast(self, record: tuple) -> list:
        """Synchronous control call against every shard, in shard order."""
        futures = [pool.submit(_fork_control, record) for pool in self.pools]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the per-shard executors down."""
        for pool in self.pools:
            pool.shutdown(wait=False, cancel_futures=True)


def _default_shard_mode() -> str:
    """``"fork"`` where the platform supports it, else ``"inline"``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "inline"


#: Entries per pipeline chunk: a fault-free segment longer than this is
#: dispatched in chunks, each submitted to the workers before the
#: previous chunk's results are replayed.
_SEGMENT_CHUNK = 1024


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class ShardedNetwork(Network):
    """Epoch-barrier sharded engine (see module docstring).

    Build directly, or via the engine selector::

        network = Network(graph, engine="sharded", shards=4, quadtree=qt)

    Additional parameters over :class:`Network`:

    shards:
        Number of spatial shards (default 2).
    quadtree:
        Optional :class:`~repro.geometry.quadtree.QuadTreeDecomposition`
        used to build the :class:`ShardPlan` along cell boundaries; the
        fallback partitions nodes into insertion-order blocks.
    shard_mode:
        ``"fork"`` (per-shard child processes; the default where the
        platform supports the fork start method) or ``"inline"``
        (in-process workers; deterministic reference, no parallelism).

    Constraints: jitter, lossy links and energy models are rejected at
    construction; exactly one :meth:`run` per instance.
    """

    engine = "sharded"

    def __init__(
        self,
        graph,
        kernel: EventKernel | None = None,
        *,
        shards: int = 2,
        quadtree=None,
        shard_mode: str | None = None,
        **kwargs: Any,
    ):
        super().__init__(graph, kernel, **kwargs)
        if self.jitter != 0.0:
            raise ValueError("sharded engine requires jitter=0 (synchronous model)")
        if self.loss is not None:
            raise ValueError("sharded engine does not support lossy links")
        if self.energy is not None:
            raise ValueError("sharded engine does not support energy models")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shard_mode not in (None, "inline", "fork"):
            raise ValueError(f"shard_mode must be 'inline' or 'fork', got {shard_mode!r}")
        self.shards = int(shards)
        self.shard_mode = shard_mode or _default_shard_mode()
        self._quadtree = quadtree
        self._plan: ShardPlan | None = None
        self._transport = None
        self._ran = False
        self._injector: FaultInjector | None = None
        self._done_callbacks: dict[Hashable, Callable] = {}
        # Private calendar queue: time -> FIFO list of entry records.
        self._pending: dict[float, list] = {}
        self._ptimes: list[float] = []
        self._window_end = 0.0
        self._events_done = 0
        self._max_events: int | None = None

    @staticmethod
    def _default_kernel() -> EventKernel:
        """Pre-run scheduling lands in a wheel (drained at ``run()``)."""
        return TimerWheelKernel()

    # ------------------------------------------------------------------
    # plan
    # ------------------------------------------------------------------
    def build_plan(self) -> ShardPlan:
        """The shard plan this network will run with (built on demand)."""
        if self._plan is None:
            if self._quadtree is not None:
                plan = ShardPlan.from_quadtree(self._quadtree, self.shards)
            else:
                plan = ShardPlan.from_graph(self.graph, self.shards)
            plan.validate_cover(self.graph)
            self._plan = plan
        return self._plan

    # ------------------------------------------------------------------
    # coordinator-side guards and fault-path overrides
    # ------------------------------------------------------------------
    def _post_delivery(self, delay: float, message: Message) -> None:
        if self._transport is not None:
            raise RuntimeError(
                "coordinator-side message scheduling during a sharded run is "
                "unsupported (handlers execute inside shard workers)"
            )
        super()._post_delivery(delay, message)

    def schedule_owned(self, owner: Hashable, delay: float, callback, *args) -> Event:
        """Pre-run timers land in the coordinator wheel; mid-run
        coordinator-side scheduling is a misuse and raises."""
        if self._transport is not None:
            raise RuntimeError(
                "coordinator-side timer scheduling during a sharded run is "
                "unsupported (handlers execute inside shard workers)"
            )
        return super().schedule_owned(owner, delay, callback, *args)

    def cancel_owned(self, owner: Hashable) -> int:
        """Cancel *owner*'s timers everywhere they live.

        Coordinator-held initial timers are cancelled locally; the
        owner's shard counts and cancels its worker-held timers via a
        synchronous RPC.  One merged ``timer.cancel`` event is emitted —
        the same single event the serial engine's unified registry
        produces.
        """
        if self._transport is None:
            return super().cancel_owned(owner)
        cancelled = 0
        for event in self._owned_timers.pop(owner, ()):
            if not event.fired and not event.cancelled:
                event.cancel()
                cancelled += 1
        shard = self._plan.owner.get(owner)
        if shard is not None:
            cancelled += self._transport.control_one(shard, ("cancel", owner))
        if cancelled and self._tracer is not None:
            self._tracer.emit(self.kernel.now, "timer.cancel", owner, count=cancelled)
        return cancelled

    def _broadcast_mutation(self, method: str, args: tuple) -> None:
        if self._transport is not None:
            self._transport.broadcast(("mutate", method, args))

    def remove_node(self, node_id: Hashable) -> tuple[Hashable, ...]:
        """Crash *node_id* on the coordinator and every shard graph."""
        was_dead = node_id in self.dead_nodes
        neighbours = super().remove_node(node_id)
        if not was_dead:
            self._broadcast_mutation("remove_node", (node_id,))
        return neighbours

    def restore_node(self, node_id: Hashable, neighbours: Iterable[Hashable] = ()) -> None:
        """Recover *node_id* on the coordinator and every shard graph."""
        neighbours = tuple(neighbours)
        super().restore_node(node_id, neighbours)
        self._broadcast_mutation("restore_node", (node_id, neighbours))

    def remove_edge(self, u: Hashable, v: Hashable) -> bool:
        """Sever *u*—*v* on the coordinator and every shard graph."""
        changed = super().remove_edge(u, v)
        if changed:
            self._broadcast_mutation("remove_edge", (u, v))
        return changed

    def restore_edge(self, u: Hashable, v: Hashable) -> bool:
        """Restore *u*—*v* on the coordinator and every shard graph."""
        changed = super().restore_edge(u, v)
        if changed:
            self._broadcast_mutation("restore_edge", (u, v))
        return changed

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute the sharded run (exactly once per instance)."""
        if self._ran:
            raise RuntimeError(
                "ShardedNetwork supports a single run() per instance; build a "
                "fresh network for another run"
            )
        self._ran = True
        plan = self.build_plan()
        self._drain_kernel(plan)
        if self.shard_mode == "fork":
            transport = _ForkTransport(self, plan)
        else:
            transport = _InlineTransport(self, plan)
        self._done_callbacks = {
            node: handler.on_protocol_done
            for node, handler in self._handlers.items()
            if getattr(handler, "on_protocol_done", None) is not None
        }
        self._transport = transport
        self._max_events = max_events
        try:
            self._run_epochs(until)
            self._gather()
        finally:
            self._transport = None
            transport.close()
        return self.kernel.now

    def _drain_kernel(self, plan: ShardPlan) -> None:
        """Move every pre-run kernel entry into the calendar queue, in
        exact ``(time, seq)`` order, classifying each one."""
        kernel = self.kernel
        if isinstance(kernel, TimerWheelKernel):
            entries = [
                (time, event, callback, args)
                for time in sorted(kernel._buckets)
                for (event, callback, args) in kernel._buckets[time]
            ]
            kernel._buckets.clear()
            kernel._times.clear()
            kernel._pending = 0
        else:
            entries = [
                (time, event, callback, args)
                for (time, _seq, event, callback, args) in sorted(
                    kernel._heap, key=lambda item: (item[0], item[1])
                )
            ]
            kernel._heap.clear()
        for time, event, callback, args in entries:
            self._push(time, self._classify(plan, event, callback, args))

    def _classify(self, plan: ShardPlan, event, callback, args) -> tuple:
        bound = getattr(callback, "__self__", None)
        if isinstance(bound, FaultInjector):
            self._injector = bound
            return ("fault", event, callback, args)
        if bound is not None:
            node = getattr(bound, "node_id", None)
            if node is not None and self._handlers.get(node) is bound:
                return ("itimer", event, plan.owner[node], node, callback.__name__, args)
        raise ValueError(
            f"sharded engine cannot dispatch pre-run kernel entry {callback!r}; "
            "only handler-bound timers and fault-injector events are supported"
        )

    def _push(self, time: float, record: tuple) -> None:
        bucket = self._pending.get(time)
        if bucket is None:
            self._pending[time] = [record]
            heapq.heappush(self._ptimes, time)
        else:
            bucket.append(record)

    def _run_epochs(self, until: float | None) -> None:
        horizon = self.hop_delay
        tracer = self._tracer
        while self._ptimes:
            t0 = self._ptimes[0]
            if until is not None and t0 > until:
                self.kernel.now = until
                return
            window_end = t0 + horizon
            entries: list[tuple[float, tuple]] = []
            while self._ptimes and self._ptimes[0] < window_end and (
                until is None or self._ptimes[0] <= until
            ):
                time = heapq.heappop(self._ptimes)
                for record in self._pending.pop(time):
                    entries.append((time, record))
            self._window_end = window_end
            if tracer is not None:
                tracer.emit(
                    t0,
                    "shard.epoch",
                    None,
                    start=t0,
                    horizon=window_end,
                    entries=len(entries),
                )
            self._process_window(entries)
        if until is not None and until > self.kernel.now:
            self.kernel.now = until

    def _process_window(self, entries: list[tuple[float, tuple]]) -> None:
        tracer = self._tracer
        boundary = 0
        queues = [0] * self._plan.shards
        start = 0
        total = len(entries)
        while start < total:
            end = start
            while end < total and entries[end][1][0] != "fault":
                end += 1
            if end > start:
                boundary_part, queue_part = self._process_segment(entries[start:end])
                boundary += boundary_part
                for shard, count in enumerate(queue_part):
                    queues[shard] += count
            if end < total:
                time, record = entries[end]
                self._check_budget()
                self.kernel.now = time
                _tag, event, callback, args = record
                if event is not None:
                    event.fired = True
                    if tracer is not None:
                        tracer.emit(
                            time, "timer.fire", event.owner,
                            callback=_callback_name(callback),
                        )
                callback(*args)
                self._events_done += 1
                end += 1
            start = end
        if tracer is not None and entries:
            last_time = entries[-1][0]
            tracer.emit(last_time, "shard.boundary", None, messages=boundary)
            tracer.emit(last_time, "shard.queues", None, depths=queues)

    def _process_segment(
        self, entries: list[tuple[float, tuple]]
    ) -> tuple[int, list[int]]:
        """Dispatch one fault-free segment and merge its effects back.

        The segment is cut into :data:`_SEGMENT_CHUNK`-entry chunks, each
        submitted to the workers *before* the previous chunk's results
        are replayed — fork-mode workers execute one chunk ahead of the
        serial replay walk.  Sound because dispatch batches depend only
        on the (fixed) entry list, never on replay effects, which all
        land beyond the window end.

        Returns ``(boundary_messages, per_shard_dispatch_counts)`` for
        the window's ``shard.*`` accounting.
        """
        boundary = 0
        queues = [0] * self._plan.shards
        prev: tuple[list, list, dict] | None = None
        for start in range(0, len(entries), _SEGMENT_CHUNK):
            chunk = entries[start : start + _SEGMENT_CHUNK]
            batches, slots, crossed = self._build_batches(chunk)
            boundary += crossed
            for shard, batch in batches.items():
                queues[shard] += len(batch)
            handle = self._transport.execute_async(batches)
            if prev is not None:
                self._replay_chunk(*prev)
            prev = (chunk, slots, handle)
        if prev is not None:
            self._replay_chunk(*prev)
        return boundary, queues

    def _build_batches(
        self, entries: list[tuple[float, tuple]]
    ) -> tuple[dict[int, list], list[tuple], int]:
        """Classify a chunk's entries into per-shard dispatch batches.

        Returns ``(batches, slots, boundary_count)`` where ``slots``
        records, per entry, either its ``(shard, batch_index)`` dispatch
        position or a ``("skip", ...)`` marker for cancelled
        coordinator-held timers.
        """
        batches: dict[int, list] = {}
        slots: list[tuple] = []
        boundary = 0
        for time, record in entries:
            tag = record[0]
            if tag == "itimer":
                _tag, event, shard, node, method, args = record
                if event is not None and event.cancelled:
                    slots.append(
                        ("skip", time, event.owner, _callback_name(event.callback))
                    )
                    continue
                fire = event is not None
                if fire:
                    event.fired = True
                owner = event.owner if event is not None else None
                items = batches.setdefault(shard, [])
                items.append(("start", time, owner, node, method, args, fire))
            elif tag == "wtimer":
                _tag, shard, ref = record
                items = batches.setdefault(shard, [])
                items.append(("timer", time, ref))
            elif tag == "lmsg":
                _tag, shard, ref = record
                items = batches.setdefault(shard, [])
                items.append(("local", time, ref))
            else:  # "xmsg"
                _tag, message = record
                boundary += 1
                shard = self._plan.owner[message.dst]
                items = batches.setdefault(shard, [])
                items.append(("msg", time, message))
            slots.append((shard, len(items) - 1))
        return batches, slots, boundary

    def _replay_chunk(
        self, entries: list[tuple[float, tuple]], slots: list[tuple], handle: dict
    ) -> None:
        """Walk one chunk's results in original serial order."""
        results = self._transport.wait(handle)
        tracer = self._tracer
        cursor = 0
        for time, _record in entries:
            slot = slots[cursor]
            cursor += 1
            if slot[0] == "skip":
                # Cancelled coordinator-held timer: the serial kernel pops
                # and skips it without counting it as executed.
                if tracer is not None:
                    tracer.emit(slot[1], "timer.skip", slot[2], callback=slot[3])
                continue
            self._check_budget()
            self.kernel.now = time
            shard, index = slot
            block = results[shard]
            if tracer is not None and block[6] is not None:
                for ev_time, ev_type, ev_node, ev_data in block[6][index]:
                    tracer.emit(ev_time, ev_type, ev_node, **ev_data)
            self._replay_item(shard, time, block, index)
            self._events_done += 1

    def _check_budget(self) -> None:
        if self._max_events is not None and self._events_done >= self._max_events:
            raise RuntimeError(
                f"kernel exceeded max_events={self._max_events}; "
                "a protocol is probably not terminating"
            )

    def _replay_item(
        self, shard: int, time: float, block: tuple, index: int
    ) -> None:
        """Replay one entry's effect descriptors at its serial position."""
        op_offsets, aux_offsets, tags, delays, refs, aux, _events = block
        a = aux_offsets[index]
        for k in range(op_offsets[index], op_offsets[index + 1]):
            tag = tags[k]
            if tag == _OP_LOCAL_MSG:
                land = time + delays[k]
                self._guard_lookahead(land, "message")
                self._push(land, ("lmsg", shard, refs[k]))
            elif tag == _OP_CROSS_MSG:
                land = time + delays[k]
                self._guard_lookahead(land, "message")
                self._push(land, ("xmsg", aux[a]))
                a += 1
            elif tag == _OP_TIMER:
                land = time + delays[k]
                self._guard_lookahead(land, "timer")
                self._push(land, ("wtimer", shard, refs[k]))
            elif tag == _OP_REPAIR:
                kind, dead, by = aux[a]
                a += 1
                injector = self._injector
                if injector is None:
                    raise RuntimeError(
                        "repair descriptor replayed without an injector"
                    )
                injector.repairs.append((time, kind, dead, by))
                if dead not in injector.repair_times:
                    injector.repair_times[dead] = time
            else:  # _OP_DONE: protocol completion callback
                node, args = aux[a]
                a += 1
                self._done_callbacks[node](*args)

    def _guard_lookahead(self, land: float, what: str) -> None:
        if land < self._window_end:
            raise RuntimeError(
                f"lookahead violation: a worker {what} lands at t={land:g}, "
                f"inside the current epoch window ending at "
                f"t={self._window_end:g}; the sharded engine requires every "
                "runtime effect to land at least one hop_delay ahead"
            )

    def _gather(self) -> None:
        """Fold per-shard results into the coordinator: handler state
        onto the original handlers, stats partials into ``self.stats``."""
        for states, stats in self._transport.broadcast(("finish",)):
            self.stats.merge(stats)
            for node, state in states.items():
                self._handlers[node].__dict__.update(state)

    def __repr__(self) -> str:
        return (
            f"ShardedNetwork(nodes={self.graph.number_of_nodes()}, "
            f"shards={self.shards}, mode={self.shard_mode}, "
            f"t={self.kernel.now:.2f})"
        )

"""Per-node energy accounting (Mica2-style radio cost model).

The paper motivates in-network clustering with the power asymmetry of the
Crossbow Mica2 mote: radio communication costs up to three orders of
magnitude more than computation, so message counts are the proxy for
battery drain.  This module turns the network layer's message traffic into
per-node energy figures, enabling the classic sensor-network analyses the
message totals hide:

- **hotspots** — nodes near the base station (centralized schemes) or
  cluster roots relay disproportionately and die first;
- **network lifetime** — time until the first node exhausts its budget.

The default constants follow the Mica2's CC1000 radio at 38.4 kbps and
3 V: roughly 60 µJ to transmit and 30 µJ to receive a 36-byte packet.  We
charge per *value* carried (one coefficient ≈ one paper "message"), which
keeps energy proportional to the message metric used everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro._validation import require_positive

#: Default per-value radio energies (joules) — Mica2-era magnitudes.
TX_ENERGY_PER_VALUE = 60e-6
RX_ENERGY_PER_VALUE = 30e-6


@dataclass
class EnergyModel:
    """Accumulates per-node transmit/receive energy.

    Attach to a :class:`~repro.sim.network.Network` via
    :meth:`install`; every hop then charges the sender TX and the
    receiver RX energy proportional to the values carried.
    """

    tx_per_value: float = TX_ENERGY_PER_VALUE
    rx_per_value: float = RX_ENERGY_PER_VALUE
    spent: dict[Hashable, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive(self.tx_per_value, "tx_per_value")
        require_positive(self.rx_per_value, "rx_per_value")

    def charge_hop(self, sender: Hashable, receiver: Hashable, values: int) -> None:
        """Charge TX to *sender* and RX to *receiver* for one hop."""
        self.spent[sender] = self.spent.get(sender, 0.0) + values * self.tx_per_value
        self.spent[receiver] = self.spent.get(receiver, 0.0) + values * self.rx_per_value

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        """Sum of all nodes' energy spent (joules)."""
        return sum(self.spent.values())

    def hottest(self, k: int = 5) -> list[tuple[Hashable, float]]:
        """The *k* most drained nodes — the hotspot set."""
        return sorted(self.spent.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:k]

    def max_energy(self) -> float:
        """The hottest node's energy spent (joules)."""
        return max(self.spent.values(), default=0.0)

    def lifetime_rounds(self, budget_joules: float, per_round_spent: float) -> float:
        """Rounds until the hottest node exhausts *budget_joules*, assuming
        the measured per-round drain repeats."""
        require_positive(budget_joules, "budget_joules")
        if per_round_spent <= 0:
            return float("inf")
        return budget_joules / per_round_spent

    def imbalance(self) -> float:
        """Max/mean drain ratio: 1.0 is perfectly balanced; centralized
        collection drives this up at the base station's neighbours."""
        if not self.spent:
            return 1.0
        values = list(self.spent.values())
        mean = sum(values) / len(values)
        return (max(values) / mean) if mean > 0 else 1.0

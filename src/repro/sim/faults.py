"""Fault injection: declarative, seed-deterministic fail-stop faults.

The paper's cost model assumes reliable synchronous links, but its
deployment targets (Tao buoys, Death Valley sensors) are settings where
nodes die and links churn.  :class:`LossyLinkModel` covers transient loss
with per-hop ARQ — guaranteed eventual delivery — so it cannot model
fail-stop faults at all.  This module adds them:

- :class:`FaultPlan` — a declarative schedule of fault events (node
  crashes, optional recoveries, link up/down churn, whole-region
  partitions).  Plans are plain data: build them explicitly event by
  event, or stochastically via :meth:`FaultPlan.random` (seeded
  ``numpy`` generator, so a plan is a pure function of its arguments).
- :class:`FaultInjector` — executes a plan on a :class:`Network`'s event
  kernel.  Crashing a node cancels its pending owned timers, drops
  in-flight deliveries addressed to it, removes it from the
  communication graph and invalidates the path cache — all via the
  network's own mutators (`remove_node` etc.), never by hand-editing
  ``network.graph``.  The injector also keeps the crash/repair
  timeline that fault experiments report (repair latency).

The injector mutates ``network.graph`` in place; callers that need the
original topology afterwards should build the :class:`Network` over a
copy (``graph.copy()``).

With an **empty plan nothing is scheduled and nothing is touched**, so a
zero-fault run is byte-identical to a run without an injector.

Plans can also carry **service-level faults** (stage crashes, source
stalls, malformed readings, clock skew) whose targets are parts of the
live serving process (:mod:`repro.serve`) rather than simulated nodes.
Those events use stream positions as their ``time`` axis, are listed by
:attr:`FaultPlan.service_events`, and are executed by the serve layer's
ChaosDriver — :meth:`FaultInjector.arm` refuses them, keeping the two
fault domains from being crossed by accident.

Observability: with a tracer attached to the network, the injector emits
``fault.inject`` when a plan event fires (the *intent*; the network's
mutators separately emit ``node.crash`` / ``link.down`` etc. — the
*effect*) and ``repair.note`` when a protocol layer reports a repair.
The ``python -m repro trace`` inspector joins ``node.crash`` to
``repair.note`` events to reconstruct crash→detection→repair timelines;
see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.sim.network import Network

#: Fault actions understood by the injector.
CRASH = "crash"
RECOVER = "recover"
LINK_DOWN = "link_down"
LINK_UP = "link_up"
PARTITION = "partition"

#: Service-level fault actions (non-simulated targets): these name parts
#: of the live serving process (:mod:`repro.serve`) rather than simulated
#: sensor nodes, and are executed by the serve layer's ChaosDriver at
#: stream positions — ``FaultEvent.time`` is a reading sequence number,
#: not a kernel timestamp.  :class:`FaultInjector` refuses to arm them.
STAGE_CRASH = "stage_crash"
SOURCE_STALL = "source_stall"
MALFORM = "malform"
CLOCK_SKEW = "clock_skew"

_SERVICE_ACTIONS = frozenset({STAGE_CRASH, SOURCE_STALL, MALFORM, CLOCK_SKEW})
_ACTIONS = frozenset({CRASH, RECOVER, LINK_DOWN, LINK_UP, PARTITION}) | _SERVICE_ACTIONS


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is a node id for crash/recover, an ``(u, v)`` edge tuple
    for link churn, and a tuple of region node ids for a partition (every
    edge crossing the region boundary is severed at injection time).
    """

    time: float
    action: str
    target: Hashable | tuple

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")


@dataclass(slots=True)
class FaultPlan:
    """A declarative, reproducible schedule of fault events."""

    events: list[FaultEvent] = field(default_factory=list)

    # -- builders -------------------------------------------------------
    def crash(self, time: float, node: Hashable) -> "FaultPlan":
        """Fail-stop crash of *node* at *time*."""
        self.events.append(FaultEvent(time, CRASH, node))
        return self

    def recover(self, time: float, node: Hashable) -> "FaultPlan":
        """Recover a previously crashed *node* (original links, where the
        other endpoint is still alive)."""
        self.events.append(FaultEvent(time, RECOVER, node))
        return self

    def link_down(self, time: float, u: Hashable, v: Hashable) -> "FaultPlan":
        """Sever the link *u*—*v* at *time*."""
        self.events.append(FaultEvent(time, LINK_DOWN, (u, v)))
        return self

    def link_up(self, time: float, u: Hashable, v: Hashable) -> "FaultPlan":
        """Restore a previously severed link at *time*."""
        self.events.append(FaultEvent(time, LINK_UP, (u, v)))
        return self

    def partition(self, time: float, region: Iterable[Hashable]) -> "FaultPlan":
        """Cut every edge between *region* and the rest of the graph."""
        self.events.append(FaultEvent(time, PARTITION, tuple(region)))
        return self

    # -- service-level builders (executed by repro.serve's ChaosDriver;
    #    *position* is a reading sequence number, not a kernel time) ----
    def stage_crash(self, position: float, stage: str) -> "FaultPlan":
        """Crash the named pipeline *stage* when the stream reaches *position*."""
        self.events.append(FaultEvent(position, STAGE_CRASH, stage))
        return self

    def source_stall(self, position: float, source: str, duration: float) -> "FaultPlan":
        """Stall the named ingest *source* for *duration* seconds at *position*."""
        self.events.append(FaultEvent(position, SOURCE_STALL, (source, float(duration))))
        return self

    def malform(self, position: float, source: str) -> "FaultPlan":
        """Corrupt the reading the named *source* emits at *position*."""
        self.events.append(FaultEvent(position, MALFORM, source))
        return self

    def clock_skew(self, position: float, source: str, offset: float) -> "FaultPlan":
        """Skew the named *source*'s clock by *offset* seconds from *position* on."""
        self.events.append(FaultEvent(position, CLOCK_SKEW, (source, float(offset))))
        return self

    @property
    def service_events(self) -> list[FaultEvent]:
        """The service-level events (serve ChaosDriver targets), in order."""
        indexed = sorted(
            (pair for pair in enumerate(self.events) if pair[1].action in _SERVICE_ACTIONS),
            key=lambda pair: (pair[1].time, pair[0]),
        )
        return [event for _, event in indexed]

    # -- properties -----------------------------------------------------
    @property
    def empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not self.events

    def sorted_events(self) -> list[FaultEvent]:
        """Events in injection order (time, then insertion order)."""
        indexed = sorted(enumerate(self.events), key=lambda pair: (pair[1].time, pair[0]))
        return [event for _, event in indexed]

    # -- stochastic construction ---------------------------------------
    @classmethod
    def random(
        cls,
        nodes: Sequence[Hashable],
        *,
        seed: int,
        crash_fraction: float = 0.0,
        crash_window: tuple[float, float] = (0.0, 1.0),
        recover_after: float | None = None,
        churn_edges: Sequence[tuple[Hashable, Hashable]] = (),
        churn_events: int = 0,
        churn_window: tuple[float, float] = (0.0, 1.0),
        churn_downtime: float = 1.0,
        protected: Iterable[Hashable] = (),
    ) -> "FaultPlan":
        """Build a stochastic plan — a pure function of its arguments.

        ``crash_fraction`` of *nodes* (excluding *protected*, e.g. a root
        that anchors result collection) crash at times uniform in
        ``crash_window``; with ``recover_after`` set, each recovers that
        long after its crash.  ``churn_events`` picks edges from
        ``churn_edges`` (with replacement) to flap: down at a uniform
        time in ``churn_window``, back up ``churn_downtime`` later.
        """
        if not 0.0 <= crash_fraction <= 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1], got {crash_fraction}")
        rng = np.random.default_rng(seed)
        plan = cls()
        protected_set = set(protected)
        eligible = [n for n in nodes if n not in protected_set]
        n_crash = int(round(crash_fraction * len(eligible)))
        if n_crash:
            victims = rng.choice(len(eligible), size=n_crash, replace=False)
            lo, hi = crash_window
            times = rng.uniform(lo, hi, size=n_crash)
            for idx, t in zip(victims, times):
                node = eligible[int(idx)]
                plan.crash(float(t), node)
                if recover_after is not None:
                    plan.recover(float(t) + recover_after, node)
        if churn_events and churn_edges:
            picks = rng.integers(0, len(churn_edges), size=churn_events)
            lo, hi = churn_window
            times = rng.uniform(lo, hi, size=churn_events)
            for idx, t in zip(picks, times):
                u, v = churn_edges[int(idx)]
                plan.link_down(float(t), u, v)
                plan.link_up(float(t) + churn_downtime, u, v)
        return plan

    @classmethod
    def random_service(
        cls,
        *,
        seed: int,
        positions: tuple[float, float],
        stages: Sequence[str] = (),
        stage_crashes: int = 0,
        sources: Sequence[str] = (),
        stalls: int = 0,
        stall_duration: float = 0.5,
        malformed: int = 0,
    ) -> "FaultPlan":
        """Build a stochastic *service-level* plan — a pure function of
        its arguments, like :meth:`random`.

        ``stage_crashes`` crash events target stages drawn from *stages*,
        ``stalls`` stall events and ``malformed`` corrupted readings
        target sources drawn from *sources*; all fire at stream positions
        uniform in ``positions``.  Executed by the serve layer's
        ChaosDriver (see :mod:`repro.serve.chaos`).
        """
        rng = np.random.default_rng(seed)
        plan = cls()
        lo, hi = positions
        if stage_crashes and stages:
            picks = rng.integers(0, len(stages), size=stage_crashes)
            times = rng.uniform(lo, hi, size=stage_crashes)
            for idx, t in zip(picks, times):
                plan.stage_crash(float(t), stages[int(idx)])
        if stalls and sources:
            picks = rng.integers(0, len(sources), size=stalls)
            times = rng.uniform(lo, hi, size=stalls)
            for idx, t in zip(picks, times):
                plan.source_stall(float(t), sources[int(idx)], stall_duration)
        if malformed and sources:
            picks = rng.integers(0, len(sources), size=malformed)
            times = rng.uniform(lo, hi, size=malformed)
            for idx, t in zip(picks, times):
                plan.malform(float(t), sources[int(idx)])
        return plan


class FaultInjector:
    """Executes a :class:`FaultPlan` on a network's event kernel.

    Usage::

        injector = FaultInjector(network, plan)
        injector.arm()          # schedules every fault on the kernel
        network.run(...)        # faults fire interleaved with the protocol

    The injector records the crash timeline and accepts repair
    notifications from protocol layers (:meth:`note_repair`), from which
    :meth:`repair_latencies` derives the crash→repair delay per node.
    """

    def __init__(self, network: Network, plan: FaultPlan):
        self.network = network
        self.plan = plan
        self.crash_times: dict[Hashable, float] = {}
        self.repair_times: dict[Hashable, float] = {}
        #: (time, kind, dead_node, repairing_node) tuples, in repair order.
        self.repairs: list[tuple[float, str, Hashable, Hashable]] = []
        self._restore_edges: dict[Hashable, tuple[Hashable, ...]] = {}
        self._armed = False

    @property
    def crashed(self) -> set:
        """Nodes currently dead (live view of the network's dead set)."""
        return self.network.dead_nodes

    def arm(self) -> int:
        """Schedule every plan event on the kernel; returns the count.

        A no-op (0 events, nothing scheduled) for an empty plan, keeping
        zero-fault runs byte-identical to runs without an injector.
        """
        if self._armed:
            raise RuntimeError("FaultInjector.arm() called twice")
        self._armed = True
        kernel = self.network.kernel
        for event in self.plan.sorted_events():
            if event.action in _SERVICE_ACTIONS:
                raise ValueError(
                    f"service-level fault {event.action!r} targets the live "
                    "serving process, not the simulated network; run it "
                    "through repro.serve's ChaosDriver instead"
                )
            kernel.schedule_at(event.time, self._apply, event)
        return len(self.plan.events)

    def _apply(self, event: FaultEvent) -> None:
        network = self.network
        if network._tracer is not None:
            network._tracer.emit(
                network.kernel.now,
                "fault.inject",
                event.target if event.action in (CRASH, RECOVER) else None,
                action=event.action,
                target=event.target,
            )
        if event.action == CRASH:
            if event.target in network.dead_nodes:
                return
            self._restore_edges[event.target] = network.remove_node(event.target)
            self.crash_times[event.target] = network.kernel.now
        elif event.action == RECOVER:
            if event.target not in network.dead_nodes:
                return
            network.restore_node(event.target, self._restore_edges.pop(event.target, ()))
        elif event.action == LINK_DOWN:
            u, v = event.target
            network.remove_edge(u, v)
        elif event.action == LINK_UP:
            u, v = event.target
            network.restore_edge(u, v)
        elif event.action == PARTITION:
            region = set(event.target)
            graph = network.graph
            cut = [
                (u, v)
                for u, v in graph.edges
                if (u in region) != (v in region)
            ]
            for u, v in cut:
                network.remove_edge(u, v)

    # -- repair bookkeeping --------------------------------------------
    def note_repair(self, kind: str, dead: Hashable, by: Hashable) -> None:
        """Record that *by* repaired around crashed node *dead* (e.g. a
        sentinel takeover, an orphan re-election).  First notice per dead
        node sets its repair time."""
        now = self.network.kernel.now
        self.repairs.append((now, kind, dead, by))
        if dead not in self.repair_times:
            self.repair_times[dead] = now
        if self.network._tracer is not None:
            self.network._tracer.emit(now, "repair.note", by, kind=kind, dead=dead)

    def repair_latencies(self) -> list[float]:
        """Crash→first-repair delay for every repaired crashed node."""
        return [
            self.repair_times[node] - self.crash_times[node]
            for node in self.repair_times
            if node in self.crash_times
        ]

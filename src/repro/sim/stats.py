"""Communication statistics collected by the network layer.

Two complementary counters are kept per message kind and per category:

- ``packets`` — number of point-to-point transmissions (one per hop), and
- ``values``  — the paper's metric: scalar values carried × hops travelled.

Experiments report ``values`` totals; ``packets`` is useful for debugging
and for the complexity checks (Theorems 2–3 bound packet counts).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.messages import Message


@dataclass
class MessageStats:
    """Mutable accumulator of communication costs."""

    packets_by_kind: Counter = field(default_factory=Counter)
    values_by_kind: Counter = field(default_factory=Counter)
    packets_by_category: Counter = field(default_factory=Counter)
    values_by_category: Counter = field(default_factory=Counter)

    def record(self, message: Message, hops: int = 1) -> None:
        """Charge *message* for travelling *hops* hops."""
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        self.packets_by_kind[message.kind] += hops
        self.values_by_kind[message.kind] += hops * message.values
        self.packets_by_category[message.category] += hops
        self.values_by_category[message.category] += hops * message.values

    @property
    def total_packets(self) -> int:
        """Point-to-point transmissions recorded (one per hop)."""
        return sum(self.packets_by_kind.values())

    @property
    def total_values(self) -> int:
        """The paper's "number of messages" (single-value messages × hops)."""
        return sum(self.values_by_kind.values())

    def category_values(self, category: str) -> int:
        """Value-messages recorded under *category*."""
        return self.values_by_category.get(category, 0)

    def snapshot(self) -> "MessageStats":
        """Return an independent copy of the current counters."""
        return MessageStats(
            packets_by_kind=Counter(self.packets_by_kind),
            values_by_kind=Counter(self.values_by_kind),
            packets_by_category=Counter(self.packets_by_category),
            values_by_category=Counter(self.values_by_category),
        )

    def diff(self, earlier: "MessageStats") -> "MessageStats":
        """Return the costs incurred since *earlier* (a prior snapshot)."""
        return MessageStats(
            packets_by_kind=self.packets_by_kind - earlier.packets_by_kind,
            values_by_kind=self.values_by_kind - earlier.values_by_kind,
            packets_by_category=self.packets_by_category - earlier.packets_by_category,
            values_by_category=self.values_by_category - earlier.values_by_category,
        )

    def reset(self) -> None:
        """Clear all counters."""
        self.packets_by_kind.clear()
        self.values_by_kind.clear()
        self.packets_by_category.clear()
        self.values_by_category.clear()

    def __repr__(self) -> str:
        return (
            f"MessageStats(values={self.total_values}, packets={self.total_packets}, "
            f"by_category={dict(self.values_by_category)})"
        )

"""Communication statistics collected by the network layer.

Two complementary counters are kept per message kind and per category:

- ``packets`` — number of point-to-point transmissions (one per hop), and
- ``values``  — the paper's metric: scalar values carried × hops travelled.

Experiments report ``values`` totals; ``packets`` is useful for debugging
and for the complexity checks (Theorems 2–3 bound packet counts).

A third family counts **delivery failures**: messages the network layer
dropped as structured failures (dead destination, severed link, no
surviving route) instead of raising mid-simulation.  Failed messages are
never charged hops — they record ``drops_by_kind`` / ``drops_by_reason``
instead, so fault experiments can report loss without polluting the
paper's message metric.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.messages import Message


@dataclass(slots=True)
class MessageStats:
    """Mutable accumulator of communication costs."""

    packets_by_kind: Counter = field(default_factory=Counter)
    values_by_kind: Counter = field(default_factory=Counter)
    packets_by_category: Counter = field(default_factory=Counter)
    values_by_category: Counter = field(default_factory=Counter)
    drops_by_kind: Counter = field(default_factory=Counter)
    drops_by_reason: Counter = field(default_factory=Counter)
    # Running totals, so total_packets/total_values are O(1) — hot paths
    # (e.g. per-update cost deltas) read them once or twice per message.
    # Sentinel -1 means "derive from the by-kind counter once, at init";
    # snapshot()/diff() pass the already-known totals so copying stats is
    # O(distinct kinds) and never re-walks the counters.
    _total_packets: int = field(default=-1, repr=False, compare=False)
    _total_values: int = field(default=-1, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self._total_packets < 0:
            self._total_packets = sum(self.packets_by_kind.values())
        if self._total_values < 0:
            self._total_values = sum(self.values_by_kind.values())

    def record(self, message: Message, hops: int = 1) -> None:
        """Charge *message* for travelling *hops* hops."""
        self.charge(message.kind, message.category, message.values, hops)

    def charge(self, kind: str, category: str, values: int, hops: int = 1) -> None:
        """Charge *values* scalar values of *kind*/*category* over *hops* hops.

        Equivalent to :meth:`record` with a matching :class:`Message`;
        accounting-only call sites (costs charged without a message object
        travelling the network) use this to skip the construction.
        """
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        if values < 1:
            raise ValueError(f"message must carry at least one value, got {values}")
        total = hops * values
        self.packets_by_kind[kind] += hops
        self.values_by_kind[kind] += total
        self.packets_by_category[category] += hops
        self.values_by_category[category] += total
        self._total_packets += hops
        self._total_values += total

    def charge_batch(self, kind: str, category: str, values: int, count: int) -> None:
        """Charge *count* single-hop messages of identical kind/category/values.

        One counter update per family instead of *count*; the totals are
        exactly what *count* :meth:`charge` calls with ``hops=1`` would
        accumulate.  Used by the array engine's batched broadcast, where a
        whole neighbourhood receives the same-shaped message.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if values < 1:
            raise ValueError(f"message must carry at least one value, got {values}")
        total = count * values
        self.packets_by_kind[kind] += count
        self.values_by_kind[kind] += total
        self.packets_by_category[category] += count
        self.values_by_category[category] += total
        self._total_packets += count
        self._total_values += total

    def record_drop(self, message: Message, reason: str) -> None:
        """Record a structured delivery failure (no hops are charged)."""
        self.drop(message.kind, reason)

    def drop(self, kind: str, reason: str) -> None:
        """Record a delivery failure by *kind*/*reason* alone.

        Accounting-only counterpart of :meth:`record_drop` for call sites
        where no :class:`Message` object travels (e.g. a query engine
        noting that a dead relay made a cluster unreachable).
        """
        self.drops_by_kind[kind] += 1
        self.drops_by_reason[reason] += 1

    @property
    def total_drops(self) -> int:
        """Messages dropped as structured delivery failures."""
        return sum(self.drops_by_reason.values())

    @property
    def total_packets(self) -> int:
        """Point-to-point transmissions recorded (one per hop)."""
        return self._total_packets

    @property
    def total_values(self) -> int:
        """The paper's "number of messages" (single-value messages × hops)."""
        return self._total_values

    def category_values(self, category: str) -> int:
        """Value-messages recorded under *category*."""
        return self.values_by_category.get(category, 0)

    def snapshot(self) -> "MessageStats":
        """Return an independent copy of the current counters."""
        return MessageStats(
            packets_by_kind=Counter(self.packets_by_kind),
            values_by_kind=Counter(self.values_by_kind),
            packets_by_category=Counter(self.packets_by_category),
            values_by_category=Counter(self.values_by_category),
            drops_by_kind=Counter(self.drops_by_kind),
            drops_by_reason=Counter(self.drops_by_reason),
            _total_packets=self._total_packets,
            _total_values=self._total_values,
        )

    def merge(self, other: "MessageStats") -> None:
        """Fold *other*'s counters into this accumulator, exactly.

        Counter addition is integer arithmetic — associative and
        commutative with no rounding — so per-shard partial stats merged
        in any order reproduce the serial totals bit-for-bit.  The
        sharded engine relies on this to gather worker stats at epoch
        barriers; ``tests/test_stats_merge.py`` proves the contract
        property-based over random op interleavings.
        """
        self.packets_by_kind.update(other.packets_by_kind)
        self.values_by_kind.update(other.values_by_kind)
        self.packets_by_category.update(other.packets_by_category)
        self.values_by_category.update(other.values_by_category)
        self.drops_by_kind.update(other.drops_by_kind)
        self.drops_by_reason.update(other.drops_by_reason)
        self._total_packets += other._total_packets
        self._total_values += other._total_values

    def diff(self, earlier: "MessageStats") -> "MessageStats":
        """Return the costs incurred since *earlier* (a prior snapshot).

        Counters only grow, so per-kind differences are non-negative and
        the running totals subtract in O(1) — no counter re-walk.
        """
        return MessageStats(
            packets_by_kind=self.packets_by_kind - earlier.packets_by_kind,
            values_by_kind=self.values_by_kind - earlier.values_by_kind,
            packets_by_category=self.packets_by_category - earlier.packets_by_category,
            values_by_category=self.values_by_category - earlier.values_by_category,
            drops_by_kind=self.drops_by_kind - earlier.drops_by_kind,
            drops_by_reason=self.drops_by_reason - earlier.drops_by_reason,
            _total_packets=self._total_packets - earlier._total_packets,
            _total_values=self._total_values - earlier._total_values,
        )

    def reset(self) -> None:
        """Clear all counters."""
        self.packets_by_kind.clear()
        self.values_by_kind.clear()
        self.packets_by_category.clear()
        self.values_by_category.clear()
        self.drops_by_kind.clear()
        self.drops_by_reason.clear()
        self._total_packets = 0
        self._total_values = 0

    def __repr__(self) -> str:
        return (
            f"MessageStats(values={self.total_values}, packets={self.total_packets}, "
            f"by_category={dict(self.values_by_category)})"
        )

"""Discrete-event sensor-network simulation substrate."""

from repro.sim.energy import EnergyModel
from repro.sim.engine import ArrayNetwork
from repro.sim.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.kernel import Event, EventKernel, TimerWheelKernel
from repro.sim.radio import LossyLinkModel
from repro.sim.messages import (
    CATEGORY_CLUSTERING,
    CATEGORY_DATA,
    CATEGORY_QUERY,
    CATEGORY_REPAIR,
    CATEGORY_SYNC,
    CATEGORY_UPDATE,
    Message,
)
from repro.sim.network import ENGINE_ENV, Network, default_engine
from repro.sim.node import ProtocolNode
from repro.sim.shard import ShardedNetwork, ShardPlan
from repro.sim.stats import MessageStats

__all__ = [
    "ArrayNetwork",
    "ENGINE_ENV",
    "CATEGORY_CLUSTERING",
    "CATEGORY_DATA",
    "CATEGORY_QUERY",
    "CATEGORY_REPAIR",
    "CATEGORY_SYNC",
    "CATEGORY_UPDATE",
    "EnergyModel",
    "Event",
    "EventKernel",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LossyLinkModel",
    "Message",
    "MessageStats",
    "Network",
    "ProtocolNode",
    "ShardPlan",
    "ShardedNetwork",
    "TimerWheelKernel",
    "default_engine",
]

"""Distributed index structures built on the clustering (paper §7.1–7.2)."""

from repro.index.backbone import BackboneTree, build_backbone
from repro.index.mtree import MTreeIndex, build_mtree, verify_covering_invariant

__all__ = [
    "BackboneTree",
    "MTreeIndex",
    "build_backbone",
    "build_mtree",
    "verify_covering_invariant",
]

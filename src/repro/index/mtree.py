"""Distributed M-tree index on cluster trees (paper §7.1).

Each node *i* of a cluster tree maintains a routing feature ``F_i^R`` (its
own feature) and a covering radius ``R_i`` such that every node in the
subtree rooted at *i* has feature distance at most ``R_i`` from ``F_i^R``.
Leaves start with ``R = 0`` and propagate ``(F^R, R)`` to their parents;
each parent folds its children in:

    R_i = max_j ( d(F_i^R, F_j^R) + R_j )

— the triangle-inequality-safe bound the M-tree uses.  Each parent also
remembers its children's ``(F^R, R)`` pairs, enabling the parent-side
pruning checks of §7.1 without extra messages at query time.

The build is charged ``(dim+1)`` values per cluster-tree edge (feature +
radius flowing upward), mirroring the physical bottom-up aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.core.delta import Clustering
from repro.features.metrics import Metric
from repro.sim.messages import Message
from repro.sim.stats import MessageStats


@dataclass
class MTreeIndex:
    """Per-node routing features, covering radii and child tables."""

    routing_feature: dict[Hashable, np.ndarray]
    covering_radius: dict[Hashable, float]
    children: dict[Hashable, list[Hashable]]
    #: parent-side table: node -> child -> (d(F_i^R, F_j^R), R_j)
    child_info: dict[Hashable, dict[Hashable, tuple[float, float]]]
    build_messages: int = 0
    stats: MessageStats = field(default_factory=MessageStats)

    def radius_of(self, node: Hashable) -> float:
        """Covering radius of *node*."""
        return self.covering_radius[node]


def build_mtree(
    clustering: Clustering,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
) -> MTreeIndex:
    """Build the distributed M-tree over every cluster tree, bottom-up."""
    children = clustering.tree_children()
    routing_feature = {
        node: np.asarray(features[node], dtype=np.float64) for node in clustering.assignment
    }
    covering_radius: dict[Hashable, float] = {}
    child_info: dict[Hashable, dict[Hashable, tuple[float, float]]] = {
        node: {} for node in clustering.assignment
    }
    stats = MessageStats()
    dim = int(next(iter(routing_feature.values())).shape[0]) if routing_feature else 1

    for root in clustering.roots:
        # Post-order over the cluster tree (iterative to spare the stack).
        order: list[Hashable] = []
        stack = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children[node])
        for node in reversed(order):
            radius = 0.0
            for child in children[node]:
                d = metric.distance(routing_feature[node], routing_feature[child])
                child_radius = covering_radius[child]
                child_info[node][child] = (d, child_radius)
                radius = max(radius, d + child_radius)
                # The child ships (feature, radius) one hop up the tree.
                stats.record(Message("feature", child, node, values=dim + 1), hops=1)
            covering_radius[node] = radius

    return MTreeIndex(
        routing_feature,
        covering_radius,
        children,
        child_info,
        build_messages=stats.total_values,
        stats=stats,
    )


def verify_covering_invariant(
    index: MTreeIndex,
    clustering: Clustering,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    *,
    tolerance: float = 1e-9,
) -> list[str]:
    """Check that every subtree member lies within its ancestors' radii.

    Returns human-readable violations (empty list == invariant holds).
    Used by tests and by the index self-checks.
    """
    problems: list[str] = []
    for root in clustering.roots:
        stack: list[tuple[Hashable, list[Hashable]]] = [(root, [root])]
        while stack:
            node, ancestors = stack.pop()
            for ancestor in ancestors:
                d = metric.distance(features[node], index.routing_feature[ancestor])
                if d > index.covering_radius[ancestor] + tolerance:
                    problems.append(
                        f"node {node!r} at distance {d:.4f} from ancestor {ancestor!r} "
                        f"with covering radius {index.covering_radius[ancestor]:.4f}"
                    )
            for child in index.children[node]:
                stack.append((child, ancestors + [child]))
    return problems

"""Inter-cluster leader backbone tree (paper §7.2).

A spanning tree connecting the roots of all clusters, used to route
queries from any cluster root to every other cluster root.  We build the
minimum-hop spanning tree over the *cluster adjacency graph* (two clusters
are adjacent when a communication edge crosses their boundary), weighting
each adjacency by the leader-to-leader hop distance in the communication
graph, and we remember the concrete hop path for every backbone edge so
query routing can be charged exactly.

The paper accounts the backbone construction cost to ELink; the cost here
is one handshake (2 control values) per hop of every backbone edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import networkx as nx

from repro.core.delta import Clustering
from repro.sim.messages import Message
from repro.sim.stats import MessageStats


@dataclass
class BackboneTree:
    """Spanning tree over cluster roots with per-edge routing paths."""

    tree: nx.Graph  # nodes are cluster roots
    paths: dict[tuple[Hashable, Hashable], Sequence[Hashable]]
    build_messages: int = 0
    stats: MessageStats = field(default_factory=MessageStats)

    def path(self, a: Hashable, b: Hashable) -> Sequence[Hashable]:
        """Hop path of backbone edge (a, b)."""
        if (a, b) in self.paths:
            return self.paths[(a, b)]
        return list(reversed(self.paths[(b, a)]))

    def edge_hops(self, a: Hashable, b: Hashable) -> int:
        """Hop length of backbone edge (a, b)."""
        return len(self.path(a, b)) - 1

    def neighbors(self, root: Hashable):
        """Neighbours in the underlying structure."""
        return self.tree.neighbors(root)

    def reroute_around(
        self, graph: nx.Graph, dead_root: Hashable, replacement: Hashable
    ) -> int:
        """Repair the backbone after cluster root *dead_root* crashed.

        *replacement* (the re-elected representative of the dead root's
        cluster) takes the dead root's place in the tree; each incident
        backbone edge is re-routed over the *surviving* communication
        graph and re-charged as at build time (one 2-value handshake per
        hop, recorded in :attr:`stats` as repair traffic).  Backbone
        neighbours that are unreachable in the surviving graph have their
        edge dropped — the tree may split; callers detect that via the
        returned count and report partial coverage.  Returns the number
        of successfully re-routed edges.
        """
        if dead_root not in self.tree:
            raise KeyError(f"{dead_root!r} is not a backbone node")
        neighbours = list(self.tree.neighbors(dead_root))
        self.tree.remove_node(dead_root)
        for key in [k for k in self.paths if dead_root in k]:
            del self.paths[key]
        self.tree.add_node(replacement)
        rerouted = 0
        for neighbour in neighbours:
            if neighbour == replacement or neighbour not in graph:
                continue
            try:
                path = nx.shortest_path(graph, replacement, neighbour)
            except (nx.NodeNotFound, nx.NetworkXNoPath):
                continue  # unreachable survivor: this edge stays severed
            self.tree.add_edge(replacement, neighbour)
            self.paths[(replacement, neighbour)] = path
            self.stats.record(
                Message("probe", replacement, neighbour, values=2, category="repair"),
                hops=max(len(path) - 1, 1),
            )
            rerouted += 1
        return rerouted


def build_backbone(graph: nx.Graph, clustering: Clustering) -> BackboneTree:
    """Build the leader backbone tree (see module docstring)."""
    roots = clustering.roots
    stats = MessageStats()
    if len(roots) == 1:
        return BackboneTree(_single(roots[0]), {}, 0, stats)

    adjacency = nx.Graph()
    adjacency.add_nodes_from(roots)
    assignment = clustering.assignment
    for a, b in graph.edges:
        ra, rb = assignment[a], assignment[b]
        if ra != rb:
            adjacency.add_edge(ra, rb)
    if not nx.is_connected(adjacency):
        # The communication graph is connected, so cluster adjacency must
        # be too; a disconnect indicates a broken clustering.
        raise ValueError("cluster adjacency graph is disconnected")

    for ra, rb in adjacency.edges:
        adjacency[ra][rb]["weight"] = nx.shortest_path_length(graph, ra, rb)
    mst = nx.minimum_spanning_tree(adjacency, weight="weight")

    paths: dict[tuple[Hashable, Hashable], Sequence[Hashable]] = {}
    for ra, rb in mst.edges:
        path = nx.shortest_path(graph, ra, rb)
        paths[(ra, rb)] = path
        # Handshake: 2 control values per hop of the backbone edge.
        stats.record(Message("feature", ra, rb, values=2), hops=len(path) - 1)

    tree = nx.Graph()
    tree.add_nodes_from(roots)
    tree.add_edges_from(mst.edges)
    return BackboneTree(tree, paths, stats.total_values, stats)


def _single(root: Hashable) -> nx.Graph:
    tree = nx.Graph()
    tree.add_node(root)
    return tree

"""repro — reproduction of *Distributed Spatial Clustering in Sensor
Networks* (Meka & Singh, EDBT 2006).

The package implements the paper's δ-clustering problem and the **ELink**
in-network clustering algorithm (implicit and explicit signalling), the
full sensor-network simulation substrate it runs on, the slack-based
dynamic maintenance layer, the distributed M-tree index with range and
path queries, every baseline the paper compares against, the datasets, and
an experiment harness regenerating every figure of the evaluation section.

Quickstart::

    import numpy as np
    from repro import (
        ELinkConfig, run_elink, EuclideanMetric, grid_topology,
    )

    topology = grid_topology(10, 10)
    features = {v: np.array([topology.positions[v][0]]) for v in
                topology.graph.nodes}
    result = run_elink(topology, features, EuclideanMetric(),
                       ELinkConfig(delta=2.0))
    print(result.num_clusters, result.total_messages)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every figure.
"""

from repro.baselines import (
    HierarchicalResult,
    SpanningForestResult,
    SpectralResult,
    SpectralSolver,
    centralized_collection_cost,
    run_hierarchical,
    run_spanning_forest,
    spectral_clustering_search,
)
from repro.core import (
    AcquisitionPlan,
    CentralizedUpdateBaseline,
    Clustering,
    ClusteringViolation,
    ELinkConfig,
    ELinkResult,
    MaintenanceSession,
    RepresentativeSampler,
    UpdateOutcome,
    clustering_from_assignment,
    run_elink,
    validate_clustering,
)
from repro.datasets import (
    generate_death_valley_dataset,
    generate_synthetic_dataset,
    generate_tao_dataset,
)
from repro.features import (
    EuclideanMetric,
    ManhattanMetric,
    MatrixMetric,
    Metric,
    TAO_WEIGHTS,
    WeightedEuclideanMetric,
)
from repro.geometry import (
    QuadTreeDecomposition,
    Topology,
    grid_topology,
    random_geometric_topology,
    scatter_topology,
)
from repro.index import BackboneTree, MTreeIndex, build_backbone, build_mtree
from repro.models import ARModel, RecursiveLeastSquares, TaoNodeModel, fit_ar
from repro.io import load_state, save_state
from repro.obs import KernelProfiler, MetricsRegistry, TraceInspector, Tracer, profiled
from repro.queries import (
    KnnQueryEngine,
    PathQueryEngine,
    RangeQueryEngine,
    TagEngine,
    bfs_flood_path,
    brute_force_knn,
    brute_force_range,
    maximin_safe_path,
)
from repro.sim import (
    EnergyModel,
    EventKernel,
    LossyLinkModel,
    Message,
    MessageStats,
    Network,
    ProtocolNode,
)

__version__ = "1.0.0"

__all__ = [
    "ARModel",
    "AcquisitionPlan",
    "BackboneTree",
    "CentralizedUpdateBaseline",
    "Clustering",
    "ClusteringViolation",
    "ELinkConfig",
    "ELinkResult",
    "EnergyModel",
    "EuclideanMetric",
    "EventKernel",
    "HierarchicalResult",
    "KernelProfiler",
    "KnnQueryEngine",
    "LossyLinkModel",
    "MTreeIndex",
    "MaintenanceSession",
    "MetricsRegistry",
    "ManhattanMetric",
    "MatrixMetric",
    "Message",
    "MessageStats",
    "Metric",
    "Network",
    "PathQueryEngine",
    "ProtocolNode",
    "QuadTreeDecomposition",
    "RangeQueryEngine",
    "RecursiveLeastSquares",
    "RepresentativeSampler",
    "SpanningForestResult",
    "SpectralResult",
    "SpectralSolver",
    "TAO_WEIGHTS",
    "TagEngine",
    "TaoNodeModel",
    "Topology",
    "TraceInspector",
    "Tracer",
    "UpdateOutcome",
    "WeightedEuclideanMetric",
    "bfs_flood_path",
    "brute_force_knn",
    "brute_force_range",
    "build_backbone",
    "build_mtree",
    "centralized_collection_cost",
    "clustering_from_assignment",
    "fit_ar",
    "generate_death_valley_dataset",
    "generate_synthetic_dataset",
    "generate_tao_dataset",
    "grid_topology",
    "load_state",
    "maximin_safe_path",
    "profiled",
    "random_geometric_topology",
    "run_elink",
    "run_hierarchical",
    "run_spanning_forest",
    "save_state",
    "scatter_topology",
    "spectral_clustering_search",
    "validate_clustering",
]

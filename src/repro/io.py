"""Saving and loading clusterings, topologies and features (JSON).

A deployment clusters once and answers queries for days, possibly across
base-station restarts, so the artifacts need to survive a process:

- :func:`save_state` / :func:`load_state` round-trip a
  :class:`~repro.core.delta.Clustering` together with its topology and
  feature map through a single JSON document.

Node ids are serialized with a small tagged encoding (ints, strings and
tuples of those survive the round trip; other id types are rejected with
a clear error rather than silently stringified).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Hashable

import networkx as nx
import numpy as np

from repro.core.delta import Clustering
from repro.geometry.topology import Topology

FORMAT_VERSION = 1


def _encode_id(node: Hashable) -> Any:
    if isinstance(node, bool) or node is None:
        raise TypeError(f"unsupported node id {node!r}")
    if isinstance(node, (int, str)):
        return node
    if isinstance(node, float) and float(node).is_integer():
        return int(node)
    if isinstance(node, tuple):
        return {"__tuple__": [_encode_id(part) for part in node]}
    raise TypeError(
        f"unsupported node id type {type(node).__name__!r}; "
        "use ints, strings, or tuples of those"
    )


def _decode_id(value: Any) -> Hashable:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_id(part) for part in value["__tuple__"])
    return value


def clustering_to_dict(clustering: Clustering) -> dict:
    """Plain-dict form of a clustering (JSON-ready)."""
    return {
        "assignment": [
            [_encode_id(node), _encode_id(root)]
            for node, root in sorted(clustering.assignment.items(), key=lambda kv: repr(kv[0]))
        ],
        "parent": [
            [_encode_id(node), _encode_id(parent)]
            for node, parent in sorted(clustering.parent.items(), key=lambda kv: repr(kv[0]))
        ],
        "root_features": [
            [_encode_id(root), np.asarray(feature, dtype=float).tolist()]
            for root, feature in sorted(
                clustering.root_features.items(), key=lambda kv: repr(kv[0])
            )
        ],
    }


def clustering_from_dict(payload: dict) -> Clustering:
    """Inverse of :func:`clustering_to_dict`."""
    try:
        assignment = {_decode_id(n): _decode_id(r) for n, r in payload["assignment"]}
        parent = {_decode_id(n): _decode_id(p) for n, p in payload["parent"]}
        root_features = {
            _decode_id(r): np.asarray(f, dtype=np.float64)
            for r, f in payload["root_features"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed clustering payload: {exc}") from exc
    return Clustering(assignment, parent, root_features)


def topology_to_dict(topology: Topology) -> dict:
    """Plain-dict form of a topology (JSON-ready)."""
    return {
        "nodes": [_encode_id(v) for v in sorted(topology.graph.nodes, key=repr)],
        "edges": [
            [_encode_id(a), _encode_id(b)]
            for a, b in sorted(topology.graph.edges, key=lambda e: (repr(e[0]), repr(e[1])))
        ],
        "positions": [
            [_encode_id(v), list(map(float, topology.positions[v]))]
            for v in sorted(topology.positions, key=repr)
        ],
    }


def topology_from_dict(payload: dict) -> Topology:
    """Inverse of :func:`topology_to_dict`."""
    try:
        graph = nx.Graph()
        graph.add_nodes_from(_decode_id(v) for v in payload["nodes"])
        graph.add_edges_from((_decode_id(a), _decode_id(b)) for a, b in payload["edges"])
        positions = {
            _decode_id(v): (float(x), float(y)) for v, (x, y) in payload["positions"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed topology payload: {exc}") from exc
    return Topology(graph, positions)


def save_state(
    path: str | Path,
    *,
    topology: Topology,
    features: dict[Hashable, np.ndarray],
    clustering: Clustering | None = None,
    metadata: dict | None = None,
) -> None:
    """Write topology + features (+ clustering) to *path* as JSON."""
    document = {
        "format_version": FORMAT_VERSION,
        "topology": topology_to_dict(topology),
        "features": [
            [_encode_id(v), np.asarray(f, dtype=float).tolist()]
            for v, f in sorted(features.items(), key=lambda kv: repr(kv[0]))
        ],
        "metadata": metadata or {},
    }
    if clustering is not None:
        document["clustering"] = clustering_to_dict(clustering)
    Path(path).write_text(json.dumps(document))


def load_state(
    path: str | Path,
) -> tuple[Topology, dict[Hashable, np.ndarray], Clustering | None, dict]:
    """Read back what :func:`save_state` wrote.

    Returns ``(topology, features, clustering_or_None, metadata)``.
    """
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    topology = topology_from_dict(document["topology"])
    features = {
        _decode_id(v): np.asarray(f, dtype=np.float64) for v, f in document["features"]
    }
    clustering = (
        clustering_from_dict(document["clustering"]) if "clustering" in document else None
    )
    return topology, features, clustering, document.get("metadata", {})

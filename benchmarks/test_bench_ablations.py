"""Ablation benches: signalling designs, switching knobs, link loss,
optimality gap, and energy hotspots (full profiles)."""

from repro.experiments import (
    ablation_failures,
    ablation_loss,
    ablation_signalling,
    ablation_switching,
    energy_hotspots,
    optimality_gap,
)


def test_ablation_signalling(run_once):
    table = run_once(ablation_signalling.run)
    print()
    table.print()
    for row in table.rows:
        # §5: unordered is much faster but never better in quality.
        assert row["unordered_time"] < row["implicit_time"]
        assert row["unordered_clusters"] >= row["implicit_clusters"]


def test_ablation_switching(run_once):
    table = run_once(ablation_switching.run)
    print()
    table.print()
    zero_budget = [row for row in table.rows if row["c"] == 0]
    assert all(row["switches"] == 0 for row in zero_budget)


def test_ablation_loss(run_once):
    table = run_once(ablation_loss.run)
    print()
    table.print()
    for row in table.rows:
        assert row["valid"]
        assert abs(row["inflation"] - row["expected_inflation"]) < 0.25


def test_ablation_failures(run_once):
    table = run_once(ablation_failures.run)
    print()
    table.print()
    fault_free = table.rows[0]
    assert fault_free["crash"] == 0.0
    assert fault_free["drops"] == 0
    for row in table.rows:
        # Self-healing ELink terminates with a valid δ-clustering of the
        # surviving subgraph under every fault mix.
        assert row["valid"]
        if row["crash"] > 0:
            assert row["survivors"] < fault_free["survivors"]
            assert row["drops"] > 0


def test_optimality_gap(run_once):
    table = run_once(optimality_gap.run)
    print()
    table.print()
    for row in table.rows:
        for heuristic in ("elink", "hierarchical", "spanning_forest"):
            assert row[heuristic] >= row["optimal"] - 1e-9


def test_energy_hotspots(run_once):
    table = run_once(energy_hotspots.run)
    print()
    table.print()
    by_scheme = {row["scheme"]: row for row in table.rows}
    assert by_scheme["centralized"]["total_mj"] > by_scheme["elink"]["total_mj"]
    assert by_scheme["centralized"]["imbalance"] > by_scheme["elink"]["imbalance"]


def test_ablation_asynchrony(run_once):
    from repro.experiments import ablation_asynchrony

    table = run_once(ablation_asynchrony.run)
    print()
    table.print()
    # Validity is jitter-independent for both modes.
    assert all(row["both_valid"] for row in table.rows)
    # Explicit quality stays within a small band across the whole sweep.
    explicit = table.column("explicit_clusters")
    assert max(explicit) - min(explicit) <= 0.25 * max(explicit)

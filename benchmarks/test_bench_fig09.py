"""Fig 9 — clustering quality vs δ on Death Valley data (full profile)."""

from repro.experiments import fig09_quality_death_valley


def test_fig09_quality_death_valley(run_once):
    table = run_once(fig09_quality_death_valley.run)
    print()
    table.print()
    counts = table.column("elink_implicit")
    assert counts[0] > counts[-1]
    # ELink beats the spanning forest decisively at coarse delta.
    last = table.rows[-1]
    assert last["elink_implicit"] < last["spanning_forest"]

"""Fig 1 — the motivating zone map, recovered from data (full profile)."""

from repro.experiments import fig01_zone_map


def test_fig01_zone_map(run_once):
    table = run_once(fig01_zone_map.run)
    print()
    table.print()
    row = table.rows[0]
    # The clustering must recover most of the (hidden) zone structure.
    assert row["pairwise_agreement"] > 0.6

"""Fig 8 — clustering quality vs δ on Tao data (full profile)."""

from repro.experiments import fig08_quality_tao


def test_fig08_quality_tao(run_once):
    table = run_once(fig08_quality_tao.run)
    print()
    table.print()
    counts = table.column("elink_implicit")
    assert counts[0] > counts[-1], "cluster count must fall as delta grows"
    # At fine delta (where counts are informative) ELink tracks or beats the
    # centralized spectral scheme; at coarse delta its δ/2 join rule caps the
    # reachable cluster size, so only the trend is compared there (the
    # paper's Fig 8 likewise shows ELink slightly above centralized).
    finest = table.rows[0]
    assert finest["elink_implicit"] <= 2 * finest["centralized"]
    for row in table.rows:
        assert row["elink_implicit"] <= row["spanning_forest"] + max(
            5, 0.5 * row["spanning_forest"]
        )

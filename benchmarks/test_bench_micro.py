"""Micro-benchmarks for the core operations (true repeated-timing benches).

These complement the one-shot figure benches with per-operation timings:
ELink clustering throughput, M-tree construction, and per-query costs.
"""

import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import grid_topology
from repro.index import build_backbone, build_mtree
from repro.queries import RangeQueryEngine
from repro.sim import EventKernel, Message, Network, ProtocolNode, TimerWheelKernel
from repro.sim.radio import LossyLinkModel


def _gradient_instance(side):
    topology = grid_topology(side, side)
    rng = np.random.default_rng(0)
    features = {
        v: np.array(
            [0.05 * (topology.positions[v][0] + topology.positions[v][1])
             + rng.normal(0, 0.01)]
        )
        for v in topology.graph.nodes
    }
    return topology, features


@pytest.mark.parametrize("side", [10, 20])
def test_elink_implicit_clustering(benchmark, side):
    topology, features = _gradient_instance(side)
    metric = EuclideanMetric()

    result = benchmark(
        run_elink, topology, features, metric, ELinkConfig(delta=0.4)
    )
    assert result.num_clusters >= 1


def test_elink_explicit_clustering(benchmark):
    topology, features = _gradient_instance(12)
    metric = EuclideanMetric()
    result = benchmark(
        run_elink,
        topology,
        features,
        metric,
        ELinkConfig(delta=0.4, signalling="explicit"),
    )
    assert result.num_clusters >= 1


def test_mtree_build(benchmark):
    topology, features = _gradient_instance(15)
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=0.4)).clustering
    index = benchmark(build_mtree, clustering, features, metric)
    assert index.build_messages > 0


class _Sink(ProtocolNode):
    """Counts deliveries; the cheapest possible endpoint."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network, np.zeros(1))
        self.count = 0

    def handle_message(self, message):
        self.count += 1


_LINK_MODELS = {
    "fast": {},  # jitter=0, no loss: the zero-overhead delivery path
    "jittery": {"jitter": 0.3},
    "lossy": {"loss": lambda: LossyLinkModel(0.2, seed=0)},
}


def _delivery_network(model, side=12):
    kwargs = dict(_LINK_MODELS[model])
    if "loss" in kwargs:
        kwargs["loss"] = kwargs["loss"]()
    topology = grid_topology(side, side)
    network = Network(topology.graph, EventKernel(), **kwargs)
    nodes = {v: _Sink(v, network) for v in topology.graph.nodes}
    return network, nodes


@pytest.mark.parametrize("model", ["fast", "jittery", "lossy"])
def test_send_throughput(benchmark, model):
    """Single-hop delivery throughput: fast path vs jitter vs ARQ loss."""
    network, nodes = _delivery_network(model)
    edges = list(network.graph.edges)

    def burst():
        for a, b in edges:
            network.send(Message("feature", a, b))
        network.run()

    benchmark(burst)
    assert sum(n.count for n in nodes.values()) > 0


def test_send_throughput_traced(benchmark):
    """Single-hop fast-path delivery with a tracer attached.

    The untraced ``test_send_throughput[fast]`` is the zero-cost-when-
    disabled reference; the gap between the two is the full price of
    tracing (event construction + ring append), paid only by opted-in
    runs.
    """
    from repro.obs import Tracer

    topology = grid_topology(12, 12)
    tracer = Tracer()
    network = Network(topology.graph, EventKernel(), tracer=tracer)
    nodes = {v: _Sink(v, network) for v in topology.graph.nodes}
    edges = list(network.graph.edges)

    def burst():
        for a, b in edges:
            network.send(Message("feature", a, b))
        network.run()

    benchmark(burst)
    assert sum(n.count for n in nodes.values()) > 0
    assert tracer.emitted > 0


@pytest.mark.parametrize("model", ["fast", "jittery", "lossy"])
def test_route_throughput(benchmark, model):
    """Multi-hop routing throughput (shortest-path cache + per-hop model)."""
    network, nodes = _delivery_network(model)
    corners = [0, 11, 132, 143]

    def burst():
        for src in corners:
            for dst in corners:
                if src != dst:
                    network.route(Message("query", src, dst, values=4))
        network.run()

    benchmark(burst)
    assert sum(n.count for n in nodes.values()) > 0


def test_range_query_latency(benchmark):
    topology, features = _gradient_instance(15)
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=0.4)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    engine = RangeQueryEngine(clustering, features, metric, mtree, backbone)
    q = features[0]
    out = benchmark(engine.query, q, 0.3, 0)
    assert out.messages >= 0


# ----------------------------------------------------------------------
# kernel scheduling: binary heap vs timer wheel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pending", [1_000, 10_000, 100_000])
@pytest.mark.parametrize("kernel_cls", [EventKernel, TimerWheelKernel],
                         ids=["heap", "wheel"])
def test_kernel_post_fire_throughput(benchmark, kernel_cls, pending):
    """Post `pending` fire-and-forget events over 64 distinct timestamps
    (the simulator's repeated-timestamp regime), then drain them.

    The wheel's O(1) bucket append vs the heap's O(log n) sift is the gap
    this pins; both kernels execute the identical (time, seq) order.
    """
    sink = _noop

    def post_and_fire():
        kernel = kernel_cls()
        post = kernel.post
        for i in range(pending):
            post(float(i & 63), sink)
        kernel.run()
        return kernel.events_executed

    executed = benchmark.pedantic(post_and_fire, rounds=3, iterations=1)
    assert executed == pending


def _noop():
    return None


# ----------------------------------------------------------------------
# incremental adjacency patching: churn cost must not scale with N
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", [20, 40, 80])
def test_churn_mutation_cost(benchmark, side):
    """1k link flaps on grids of 400/1600/6400 nodes.

    Before the incremental patch, every mutation rebuilt the full
    adjacency (O(N+E) per event) and this bench scaled with `side`²;
    patched, the per-event cost is bounded by the two endpoint degrees
    and the three curves should sit on top of each other.
    """
    topology = grid_topology(side, side)
    network = Network(topology.graph, engine="object")
    edges = list(network.graph.edges)[:500]

    def flap():
        for u, v in edges:
            network.remove_edge(u, v)
            network.restore_edge(u, v)

    benchmark.pedantic(flap, rounds=3, iterations=1)
    assert network.graph.number_of_edges() == topology.graph.number_of_edges()


# ----------------------------------------------------------------------
# engine flood: object vs array on the jitter=0 fast path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["object", "array"])
def test_engine_flood_throughput(benchmark, engine):
    """Broadcast storm on a 2500-node geometric graph: every node emits 16
    waves before the kernel drains, matching the in-flight population of a
    10⁵-node expand wave.  The array/object ratio here is the engine
    speedup number recorded in BENCH (`runner --micro`)."""
    from repro.geometry import random_geometric_topology

    topology = random_geometric_topology(2500, seed=3)

    def storm():
        network = Network(topology.graph, engine=engine)
        sinks = {v: _Sink(v, network) for v in network.graph.nodes}
        nodes = list(network.graph.nodes)
        for _ in range(16):
            for node in nodes:
                network.broadcast_values(node, "feature")
        network.run()
        return sum(s.count for s in sinks.values())

    delivered = benchmark.pedantic(storm, rounds=3, iterations=1)
    assert delivered == 16 * 2 * topology.graph.number_of_edges()

"""Micro-benchmarks for the core operations (true repeated-timing benches).

These complement the one-shot figure benches with per-operation timings:
ELink clustering throughput, M-tree construction, and per-query costs.
"""

import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import grid_topology
from repro.index import build_backbone, build_mtree
from repro.queries import RangeQueryEngine


def _gradient_instance(side):
    topology = grid_topology(side, side)
    rng = np.random.default_rng(0)
    features = {
        v: np.array(
            [0.05 * (topology.positions[v][0] + topology.positions[v][1])
             + rng.normal(0, 0.01)]
        )
        for v in topology.graph.nodes
    }
    return topology, features


@pytest.mark.parametrize("side", [10, 20])
def test_elink_implicit_clustering(benchmark, side):
    topology, features = _gradient_instance(side)
    metric = EuclideanMetric()

    result = benchmark(
        run_elink, topology, features, metric, ELinkConfig(delta=0.4)
    )
    assert result.num_clusters >= 1


def test_elink_explicit_clustering(benchmark):
    topology, features = _gradient_instance(12)
    metric = EuclideanMetric()
    result = benchmark(
        run_elink,
        topology,
        features,
        metric,
        ELinkConfig(delta=0.4, signalling="explicit"),
    )
    assert result.num_clusters >= 1


def test_mtree_build(benchmark):
    topology, features = _gradient_instance(15)
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=0.4)).clustering
    index = benchmark(build_mtree, clustering, features, metric)
    assert index.build_messages > 0


def test_range_query_latency(benchmark):
    topology, features = _gradient_instance(15)
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=0.4)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    engine = RangeQueryEngine(clustering, features, metric, mtree, backbone)
    q = features[0]
    out = benchmark(engine.query, q, 0.3, 0)
    assert out.messages >= 0

"""Micro-benchmarks for the performance layer.

Quantifies the two wins the perf layer buys:

- artifact cache: cold (compute + store) vs warm (unpickle) dataset
  generation — the warm path should be an order of magnitude cheaper for
  the diamond–square terrain;
- pool dispatch: submitting a lightweight trial spec vs pickling a whole
  dataset across the process boundary — the reason workers receive specs
  and rebuild (or cache-load) context on their side.
"""

import pickle

import pytest

from repro.perf.cache import CACHE_ENV, ArtifactCache


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    return tmp_path


def test_dataset_generation_cold(benchmark, cache_env):
    """Diamond–square terrain + sensors, cache enabled but empty each round."""
    from repro.datasets import generate_death_valley_dataset

    cache = ArtifactCache(cache_env)

    def cold():
        cache.clear()
        return generate_death_valley_dataset(seed=7, num_sensors=400)

    dataset = benchmark(cold)
    assert dataset.topology.num_nodes == 400


def test_dataset_generation_warm(benchmark, cache_env):
    """Same generation served from the artifact cache (pure unpickle)."""
    from repro.datasets import generate_death_valley_dataset

    generate_death_valley_dataset(seed=7, num_sensors=400)  # prime
    dataset = benchmark(generate_death_valley_dataset, seed=7, num_sensors=400)
    assert dataset.topology.num_nodes == 400


def test_dispatch_payload_spec_vs_dataset(benchmark):
    """Round-trip pickle cost of what crosses the pool boundary.

    Trial specs (what the runner actually submits) against the full
    dataset object a naive decomposition would ship per task.
    """
    from repro.datasets import generate_synthetic_dataset
    from repro.experiments import fig13_scalability_size

    specs = fig13_scalability_size.trial_specs("full")
    dataset = generate_synthetic_dataset(400, seed=3)

    spec_blob = pickle.dumps(specs)
    dataset_blob = pickle.dumps(dataset)
    # The asymmetry that motivates spec-only submission.
    assert len(spec_blob) * 100 < len(dataset_blob)

    def round_trip():
        return pickle.loads(pickle.dumps(specs))

    assert benchmark(round_trip) == specs


def test_dispatch_payload_dataset_round_trip(benchmark):
    """The avoided cost: pickling a 400-node dataset per task."""
    from repro.datasets import generate_synthetic_dataset

    dataset = generate_synthetic_dataset(400, seed=3)

    def round_trip():
        return pickle.loads(pickle.dumps(dataset))

    out = benchmark(round_trip)
    assert out.topology.num_nodes == 400

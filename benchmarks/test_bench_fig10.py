"""Fig 10 — update-handling cost vs slack (full profile)."""

from repro.experiments import fig10_update_cost


def test_fig10_update_cost(run_once):
    table = run_once(fig10_update_cost.run)
    print()
    table.print()
    # The paper's headline: ELink updates ~10x below the centralized scheme.
    ratios = table.column("centralized_over_elink")
    assert min(ratios) > 3.0
    assert max(ratios) > 10.0

"""Fig 13 — scalability with network size on synthetic data (full profile)."""

from repro.experiments import fig13_scalability_size


def test_fig13_scalability_size(run_once):
    table = run_once(fig13_scalability_size.run)
    print()
    table.print()
    first, last = table.rows[0], table.rows[-1]
    growth = last["n"] / first["n"]
    # Implicit ELink grows ~linearly; the centralized scheme super-linearly.
    implicit_growth = last["elink_implicit"] / first["elink_implicit"]
    centralized_growth = last["centralized"] / first["centralized"]
    assert implicit_growth < 2.5 * growth
    assert centralized_growth > implicit_growth
    for row in table.rows:
        assert row["elink_implicit"] < row["hierarchical"]
        assert row["elink_implicit"] < row["centralized"]

"""Fig 11 — clustering quality vs slack (full profile)."""

from repro.experiments import fig11_quality_slack


def test_fig11_quality_slack(run_once):
    table = run_once(fig11_quality_slack.run)
    print()
    table.print()
    for series in ("elink", "centralized", "spanning_forest"):
        counts = table.column(series)
        assert counts[-1] >= counts[0], f"{series} quality must degrade with slack"

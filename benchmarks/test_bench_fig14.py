"""Fig 14 — range-query cost vs radius on Tao data (full profile)."""

from repro.experiments import fig14_range_query_tao


def test_fig14_range_query_tao(run_once):
    table = run_once(fig14_range_query_tao.run)
    print()
    table.print()
    for row in table.rows:
        assert row["elink"] < row["tag"], "clustered querying must undercut TAG"
    # Gains shrink (weakly) as the radius grows — the paper's trend.
    gains = [row["tag"] / row["elink"] for row in table.rows]
    assert max(gains) > 1.5

"""Fig 15 — range-query cost vs radius on synthetic data (full profile)."""

from repro.experiments import fig14_range_query_tao, fig15_range_query_synthetic


def test_fig15_range_query_synthetic(run_once):
    table = run_once(fig15_range_query_synthetic.run)
    print()
    table.print()
    # Uncorrelated data: the clustered engines lose most of their edge —
    # gains must be visibly smaller than Fig 14's.
    gains = [row["tag"] / row["elink"] for row in table.rows]
    assert max(gains) < 4.0

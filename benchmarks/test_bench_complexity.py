"""Theorems 2–3 — empirical message/time complexity of ELink."""

from repro.experiments import complexity


def test_complexity_bounds(run_once):
    table = run_once(complexity.run)
    print()
    table.print()
    for series in ("implicit_msgs_per_node", "explicit_msgs_per_node"):
        values = table.column(series)
        assert max(values) / min(values) < 2.0, f"{series} must stay O(1) per node"
    for series in ("implicit_time_norm", "explicit_time_norm"):
        values = table.column(series)
        assert max(values) / min(values) < 3.0, f"{series} must stay bounded"

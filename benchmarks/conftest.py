"""Benchmark harness configuration.

Every ``test_bench_fig*.py`` regenerates one figure of the paper's
evaluation section (full profile) and prints the series the paper plots;
``test_bench_micro.py`` times the core operations.  Figure benches run a
single round — they are dataset-scale experiments, not microbenchmarks.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner

"""Fig 12 — scalability with time on Tao data (full profile)."""

from repro.experiments import fig12_scalability_time


def test_fig12_scalability_time(run_once):
    table = run_once(fig12_scalability_time.run)
    print()
    table.print()
    last = table.rows[-1]
    # Three log-scale bands: raw >> model-centralized >> in-network.
    assert last["centralized_raw"] > 10 * last["centralized_model"]
    assert last["centralized_model"] > 2 * last["elink_implicit"]
    assert last["elink_explicit"] > last["elink_implicit"]

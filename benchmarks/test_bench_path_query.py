"""Path-query cost — clustered safe-tree search vs BFS flooding (§7.3)."""

from repro.experiments import path_query_cost


def test_path_query_cost(run_once):
    table = run_once(path_query_cost.run)
    print()
    table.print()
    useful = [row for row in table.rows if row["found_fraction"] > 0.3]
    assert useful, "at least one gamma must leave routable queries"
    assert max(row["flood_over_clustered"] for row in useful) > 1.5

"""Setuptools shim.

Allows legacy editable installs (``pip install -e . --no-use-pep517``) in
offline environments that lack the ``wheel`` package required by the PEP 660
editable-install path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Network scaling — watch ELink's O(N) messages and O(√N log N) time.

Clusters synthetic networks of growing size with every algorithm in the
library and prints a side-by-side cost table (the Fig 13 story), plus the
empirical complexity normalizations of Theorems 2-3.

Run:  python examples/network_scaling.py
"""

import math

from repro import (
    ELinkConfig,
    run_elink,
    run_hierarchical,
    run_spanning_forest,
    spectral_clustering_search,
)
from repro.datasets import generate_synthetic_dataset

DELTA = 0.08
SIZES = (100, 200, 400)


def main() -> None:
    header = (
        f"{'n':>5} {'elink':>8} {'explicit':>9} {'forest':>8} "
        f"{'hierarchical':>13} {'centralized':>12} {'msgs/node':>10} {'time-norm':>10}"
    )
    print(header)
    print("-" * len(header))
    for n in SIZES:
        dataset = generate_synthetic_dataset(n, seed=4)
        metric = dataset.metric()
        implicit = run_elink(
            dataset.topology, dataset.features, metric, ELinkConfig(delta=DELTA)
        )
        explicit = run_elink(
            dataset.topology,
            dataset.features,
            metric,
            ELinkConfig(delta=DELTA, signalling="explicit"),
        )
        forest = run_spanning_forest(dataset.topology, dataset.features, metric, DELTA)
        hierarchical = run_hierarchical(
            dataset.topology.graph, dataset.features, metric, DELTA
        )
        centralized = spectral_clustering_search(
            dataset.topology.graph, dataset.features, metric, DELTA, search="doubling"
        )
        time_norm = implicit.protocol_time / (math.sqrt(n) * math.log(n, 4))
        print(
            f"{n:>5} {implicit.total_messages:>8} {explicit.total_messages:>9} "
            f"{forest.total_messages:>8} {hierarchical.total_messages:>13} "
            f"{centralized.messages:>12} "
            f"{implicit.stats.total_packets / n:>10.1f} {time_norm:>10.2f}"
        )
    print(
        "\nmsgs/node and time-norm staying near-constant is Theorems 2-3 "
        "holding empirically (O(N) messages, O(sqrt(N) log N) time)."
    )


if __name__ == "__main__":
    main()

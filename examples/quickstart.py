"""Quickstart: cluster a sensor grid with ELink and inspect the result.

Builds a 10x10 sensor grid over a smooth synthetic field, runs the ELink
distributed clustering algorithm (implicit signalling), validates the
result against the δ-clustering definition, and prints a small report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ELinkConfig,
    EuclideanMetric,
    grid_topology,
    run_elink,
    validate_clustering,
)


def main() -> None:
    # A 10x10 grid of sensors measuring a smooth spatial field: the feature
    # at each node is a 1-d value rising along the diagonal, with noise.
    topology = grid_topology(10, 10)
    rng = np.random.default_rng(0)
    features = {
        node: np.array(
            [
                0.08 * (topology.positions[node][0] + topology.positions[node][1])
                + rng.normal(0.0, 0.02)
            ]
        )
        for node in topology.graph.nodes
    }
    metric = EuclideanMetric()

    # δ-clustering: every pair inside a cluster within δ of each other.
    delta = 0.4
    result = run_elink(topology, features, metric, ELinkConfig(delta=delta))

    print(f"network size      : {topology.num_nodes} nodes")
    print(f"delta             : {delta}")
    print(f"clusters found    : {result.num_clusters}")
    print(f"cluster sizes     : {result.clustering.cluster_sizes()}")
    print(f"messages spent    : {result.total_messages}")
    print(f"protocol time     : {result.protocol_time:.1f} hop-delays")

    violations = validate_clustering(
        topology.graph, result.clustering, features, metric, delta
    )
    print(f"validation        : {'OK' if not violations else violations}")

    # The same network, clustered with asynchronous (explicit) signalling.
    explicit = run_elink(
        topology, features, metric, ELinkConfig(delta=delta, signalling="explicit")
    )
    print(
        f"explicit mode     : {explicit.num_clusters} clusters, "
        f"{explicit.total_messages} messages "
        f"({explicit.sync_messages} of them synchronization)"
    )


if __name__ == "__main__":
    main()

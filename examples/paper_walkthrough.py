"""Walk through the paper's worked examples and Theorem 1, end to end.

1. **Fig 3** — a 5-node network with an explicit distance matrix and δ=5:
   nodes c/e and c/d cannot share a cluster, so two clusters are minimal.
   We solve the instance exactly and with ELink.
2. **Fig 5** — sentinel D grows its cluster with δ=6: F, B, E join
   directly (within δ/2 = 3 of D), F pulls in G, B pulls in A, and C stays
   out (distance 4 > 3).  We run the actual protocol and check the story.
3. **Theorem 1** — δ-clustering is NP-complete by reduction from clique
   cover; we machine-check the reduction on a small graph by solving both
   sides exactly.

Run:  python examples/paper_walkthrough.py
"""

import networkx as nx
import numpy as np

from repro import ELinkConfig, EuclideanMetric, MatrixMetric, Topology, run_elink
from repro.core.hardness import (
    clique_cover_to_delta_clustering,
    optimal_clique_cover,
    optimal_delta_clustering,
)


def figure3() -> None:
    print("== Fig 3: minimal clusterings of a 5-node instance ==")
    graph = nx.Graph([("a", "b"), ("b", "c"), ("a", "e"), ("b", "e"), ("c", "d"), ("d", "e")])
    metric = MatrixMetric(
        {
            ("a", "b"): 2, ("a", "c"): 4, ("a", "d"): 5, ("a", "e"): 1,
            ("b", "c"): 3, ("b", "d"): 4, ("b", "e"): 2,
            ("c", "d"): 6, ("c", "e"): 5,
            ("d", "e"): 5,
        }
    )
    delta = 5.0
    features = {v: v for v in graph.nodes}  # MatrixMetric looks up ids
    clusters = optimal_delta_clustering(graph, features, metric, delta)
    print(f"  delta = {delta}; optimal clustering uses {len(clusters)} clusters:")
    for cluster in clusters:
        print(f"    {sorted(cluster)}")
    print("  (c and d cannot share a cluster: "
          f"d(c,d) = {metric.distance('c', 'd')} > delta; the paper's exact "
          "matrix is not reprinted in the text, so values here are chosen "
          "to satisfy the metric axioms while telling the same story)")


def figure5() -> None:
    print("\n== Fig 5: sentinel D grows its cluster (delta = 6) ==")
    graph = nx.Graph(
        [("A", "B"), ("B", "C"), ("B", "D"), ("D", "E"), ("D", "F"), ("F", "G")]
    )
    positions = {
        "D": (0.0, 0.0), "B": (-1.0, 0.0), "A": (-2.0, 0.1), "C": (-1.0, 1.0),
        "E": (1.0, 0.2), "F": (0.5, -0.5), "G": (1.5, -0.6),
    }
    # 1-d features chosen so distances to D match the figure:
    # F:1, G:2, B:2, A:3, E:3, C:4.
    features = {
        "D": np.array([0.0]), "F": np.array([1.0]), "G": np.array([2.0]),
        "B": np.array([-2.0]), "A": np.array([-3.0]), "C": np.array([-4.0]),
        "E": np.array([3.0]),
    }
    topology = Topology(graph, positions)
    result = run_elink(topology, features, EuclideanMetric(), ELinkConfig(delta=6.0))
    cluster_of_d = sorted(result.clustering.members("D"))
    print(f"  cluster grown from D: {cluster_of_d}")
    print(f"  C forms its own cluster: root_of(C) = {result.clustering.root_of('C')!r}")
    print(f"  total clusters: {result.num_clusters} "
          "(D's cluster + C, exactly the figure's outcome)")


def theorem1() -> None:
    print("\n== Theorem 1: clique cover reduces to delta-clustering ==")
    graph = nx.cycle_graph(5)  # C5: minimum clique cover = 3
    cover = optimal_clique_cover(graph)
    communication, metric, delta = clique_cover_to_delta_clustering(graph)
    clusters = optimal_delta_clustering(
        communication, {v: v for v in communication.nodes}, metric, delta
    )
    print(f"  C5 minimum clique cover : {len(cover)} cliques")
    print(f"  mapped delta-clustering : {len(clusters)} clusters (delta = {delta})")
    print("  equal sizes = the reduction is answer-preserving; since clique "
          "cover is NP-complete, so is delta-clustering.")


if __name__ == "__main__":
    figure3()
    figure5()
    theorem1()

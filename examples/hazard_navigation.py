"""Hazard navigation — the paper's path-query scenario (§7.3).

Sensors scattered over Death-Valley-like terrain report elevation; a storm
makes high ground dangerous, so a rescue team must route from a source
sensor to a destination while staying at least γ metres of "feature
distance" below the ridge.  The clustered path-query engine classifies
whole clusters as safe or unsafe from their root summaries, drills the
M-tree only at the boundary, and searches the safe regions — far cheaper
than flooding the query through the network.

Run:  python examples/hazard_navigation.py
"""

import numpy as np

from repro import ELinkConfig, PathQueryEngine, bfs_flood_path, build_mtree, run_elink
from repro.datasets import generate_death_valley_dataset

DELTA = 150.0  # clustering threshold in metres of elevation
GAMMA = 500.0  # required safety margin below the ridge


def main() -> None:
    dataset = generate_death_valley_dataset(seed=11, num_sensors=600)
    metric = dataset.metric()
    graph = dataset.topology.graph
    print(f"terrain network   : {dataset.topology.num_nodes} sensors")

    clustering = run_elink(
        dataset.topology, dataset.features, metric, ELinkConfig(delta=DELTA)
    ).clustering
    print(f"elevation clusters: {clustering.num_clusters} (delta={DELTA} m)")

    mtree = build_mtree(clustering, dataset.features, metric)
    engine = PathQueryEngine(graph, clustering, dataset.features, metric, mtree)

    danger = np.array([1996.0])  # the ridge line's elevation
    # Source: the lowest-lying sensor.  Destination: the safe sensor
    # spatially farthest from it — a route across the whole valley.
    nodes = sorted(graph.nodes, key=lambda v: dataset.features[v][0])
    source = nodes[0]
    positions = dataset.topology.positions
    safe = [
        v for v in graph.nodes
        if metric.distance(dataset.features[v], danger) >= GAMMA
    ]
    # Stay within the source's safe region so a route exists; the engines
    # are still free to (dis)agree on that.
    import networkx as nx

    reachable = nx.node_connected_component(graph.subgraph(safe), source)
    destination = max(
        reachable,
        key=lambda v: (positions[v][0] - positions[source][0]) ** 2
        + (positions[v][1] - positions[source][1]) ** 2,
    )
    print(
        f"query             : route {source} -> {destination} staying "
        f">= {GAMMA} m below the ridge"
    )

    ours = engine.query(source, destination, danger, GAMMA)
    flood = bfs_flood_path(
        graph, dataset.features, metric, source, destination, danger, GAMMA
    )
    assert (ours.path is None) == (flood.path is None)

    if ours.path is None:
        print("result            : no safe path exists (flood agrees)")
    else:
        worst = min(metric.distance(dataset.features[v], danger) for v in ours.path)
        print(f"result            : safe path with {len(ours.path)} hops")
        print(f"safety margin     : every hop >= {worst:.0f} m from the ridge")
        print(
            f"cost              : clustered {ours.messages} messages vs "
            f"flooding {flood.messages} "
            f"({flood.messages / max(ours.messages, 1):.1f}x more)"
        )
    print(f"safe sensors      : {ours.safe_nodes}/{dataset.topology.num_nodes}")
    print(f"clusters drilled  : {ours.clusters_drilled} (boundary only)")


if __name__ == "__main__":
    main()

"""Sea-surface-temperature monitoring — the paper's motivating scenario.

A 6x9 buoy array (the TAO layout) monitors ocean temperature.  Each buoy
fits a seasonal AR model to its measurements; ELink clusters the array into
temperature *zones* by model-coefficient similarity — the El-Nino-style
regime map of the paper's Fig 1.  On top of the clustering we answer the
motivating range query ("which regions behave like buoy X?") and stream a
week of measurements through the slack-based maintenance layer, comparing
its cost with shipping coefficients to a base station.

Run:  python examples/sst_monitoring.py
"""

import numpy as np

from repro import (
    CentralizedUpdateBaseline,
    ELinkConfig,
    MaintenanceSession,
    TagEngine,
    brute_force_range,
    build_backbone,
    build_mtree,
    run_elink,
)
from repro.datasets import fit_features, generate_tao_dataset
from repro.queries import RangeQueryEngine

DELTA = 0.08
SLACK = 0.01


def main() -> None:
    # 1. Data + models: a month of training, then the experiment stream.
    dataset = generate_tao_dataset(seed=7, samples_per_day=48, stream_days=7)
    models, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology
    print(f"buoy array        : {topology.num_nodes} buoys (6x9 grid)")

    # 2. In-network clustering into temperature zones.
    result = run_elink(
        topology, features, metric, ELinkConfig(delta=DELTA - 2 * SLACK)
    )
    print(f"zones found       : {result.num_clusters} (delta={DELTA}, slack={SLACK})")
    agreement = _zone_agreement(dataset, result.clustering)
    print(f"zone agreement    : {agreement:.0%} of node pairs grouped consistently")

    # 3. Range query: which buoys behave like buoy 0?
    mtree = build_mtree(result.clustering, features, metric)
    backbone = build_backbone(topology.graph, result.clustering)
    engine = RangeQueryEngine(result.clustering, features, metric, mtree, backbone)
    tag = TagEngine(topology.graph, features, metric)
    q = features[0]
    radius = 0.8 * DELTA
    answer = engine.query(q, radius, initiator=53)
    truth = brute_force_range(features, metric, q, radius)
    assert answer.matches == truth
    print(
        f"range query       : {len(answer.matches)} buoys behave like buoy 0 "
        f"(cost {answer.messages} vs TAG's fixed {tag.per_query_cost()})"
    )

    # 4. Stream a week of measurements through the maintenance layer.
    session = MaintenanceSession(
        topology.graph, result.clustering, features, metric, DELTA, SLACK
    )
    centralized = CentralizedUpdateBaseline(topology.graph, features, 0, SLACK)
    nodes = list(topology.graph.nodes)
    for t in range(7 * dataset.samples_per_day):
        for node in nodes:
            feature = models[node].observe(float(dataset.stream[node][t]))
            session.update_feature(node, feature)
            centralized.update_feature(node, feature)
    print(
        f"week of updates   : ELink maintenance {session.total_messages()} messages "
        f"vs centralized {centralized.total_messages()} "
        f"({centralized.total_messages() / max(session.total_messages(), 1):.1f}x more)"
    )
    print(f"zones after week  : {session.current_clustering().num_clusters}")

    # 5. Representative sampling (the paper's §1 motivation): read only the
    #    cluster roots instead of every buoy, with a provable error bound.
    from repro import RepresentativeSampler

    sampler = RepresentativeSampler(
        topology.graph, result.clustering, metric, feature_dim=4
    )
    plan = sampler.plan(base_station=0)
    errors = sampler.reconstruction_error(features)
    print(
        f"representatives   : sample {len(plan.representatives)}/{topology.num_nodes} "
        f"buoys ({plan.cost_reduction:.1f}x cheaper collection); "
        f"max reconstruction error {max(errors.values()):.4f} <= delta"
    )


def _zone_agreement(dataset, clustering) -> float:
    """Fraction of node pairs on which the clustering agrees with the
    (hidden) generating zones: same-zone pairs together, cross-zone apart."""
    import itertools

    nodes = list(dataset.topology.graph.nodes)
    agree = total = 0
    for a, b in itertools.combinations(nodes, 2):
        same_zone = dataset.zone_of[a] == dataset.zone_of[b]
        same_cluster = clustering.root_of(a) == clustering.root_of(b)
        agree += int(same_zone == same_cluster)
        total += 1
    return agree / total


if __name__ == "__main__":
    main()
